package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
)

func TestEventLogNilIsSafe(t *testing.T) {
	var l *EventLog
	l.Emit(Event{Kind: KindSedate})
	if l.Len() != 0 {
		t.Errorf("nil log len = %d", l.Len())
	}
	l = &EventLog{}
	l.Emit(Event{Cycle: 10, Kind: KindSedate, Thread: 1})
	l.Emit(Event{Cycle: 20, Kind: KindResume, Thread: 1})
	if l.Len() != 2 || l.Events[0].Cycle != 10 {
		t.Errorf("log = %+v", l.Events)
	}
}

func TestWriteNDJSON(t *testing.T) {
	events := []Event{
		{Cycle: 100, Kind: KindThresholdUpper, Unit: "IntReg", Thread: -1, TempK: 356.1},
		{Cycle: 100, Kind: KindSedate, Unit: "IntReg", Thread: 1, TempK: 356.1, Rate: 5.2},
		{Cycle: 900, Kind: KindResume, Unit: "IntReg", Thread: 1},
	}
	var sb strings.Builder
	if err := WriteNDJSON(&sb, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), sb.String())
	}
	var back []Event
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		back = append(back, e)
	}
	for i := range events {
		if back[i] != events[i] {
			t.Errorf("event %d round-trip: got %+v want %+v", i, back[i], events[i])
		}
	}
	// Thread must survive even when zero-adjacent values are omitted.
	if !strings.Contains(lines[2], `"thread":1`) {
		t.Errorf("resume line lost thread: %q", lines[2])
	}
}

// TestWritePerfettoShape checks the trace-event JSON parses, pairs
// begin/end slices, and carries the counter tracks.
func TestWritePerfettoShape(t *testing.T) {
	events := []Event{
		{Cycle: 4000, Kind: KindThresholdUpper, Unit: "IntReg", Thread: -1, TempK: 356.0},
		{Cycle: 4000, Kind: KindSedate, Unit: "IntReg", Thread: 1, TempK: 356.0, Rate: 5.0},
		{Cycle: 4000, Kind: KindOSReport, Unit: "IntReg", Thread: 1, Rate: 5.0},
		{Cycle: 6000, Kind: KindSedate, Unit: "IntAlu", Thread: 1, TempK: 356.2, Rate: 4.0}, // already sedated: no new slice
		{Cycle: 8000, Kind: KindEmergency, Unit: "IntReg", Thread: -1, TempK: 358.6},
		{Cycle: 8000, Kind: KindStopGoEngage, Thread: -1, TempK: 358.6},
		{Cycle: 9000, Kind: KindResume, Unit: "IntReg", Thread: 1},
		{Cycle: 12000, Kind: KindStopGoRelease, Thread: -1},
	}
	samples := []trace.Sample{{Cycle: 4000, TotalPowerW: 60}, {Cycle: 8000, TotalPowerW: 75}}
	var sb strings.Builder
	err := WritePerfetto(&sb, TraceOptions{
		FrequencyHz: 4e9,
		ThreadNames: []string{"crafty", "variant2"},
		Events:      events,
		Samples:     samples,
		Units:       []power.Unit{power.UnitIntReg},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	begins, ends := 0, 0
	counters := map[string]int{}
	names := map[string]bool{}
	for _, te := range doc.TraceEvents {
		names[te.Name] = true
		switch te.Ph {
		case "B":
			begins++
		case "E":
			ends++
		case "C":
			counters[te.Name]++
		}
	}
	if begins != ends {
		t.Errorf("unbalanced slices: %d begins, %d ends", begins, ends)
	}
	if begins != 2 { // one sedation slice (t1), one stop-and-go slice
		t.Errorf("begins = %d, want 2", begins)
	}
	if counters["temp_IntReg_K"] != 2 || counters["power_W"] != 2 {
		t.Errorf("counters = %v", counters)
	}
	for _, want := range []string{"process_name", "thread_name", "sedated", "stop-and-go",
		"threshold_upper IntReg", "emergency IntReg", "os_report IntReg"} {
		if !names[want] {
			t.Errorf("trace missing event %q (have %v)", want, names)
		}
	}
	// 4000 cycles at 4 GHz = 1 us.
	for _, te := range doc.TraceEvents {
		if te.Name == "threshold_upper IntReg" && te.Ts != 1.0 {
			t.Errorf("timestamp conversion off: ts = %v us, want 1", te.Ts)
		}
	}
}

// TestWritePerfettoClosesDanglingSlices: a quantum can end mid-stall
// or mid-sedation; the export must still balance.
func TestWritePerfettoClosesDanglingSlices(t *testing.T) {
	events := []Event{
		{Cycle: 1000, Kind: KindSedate, Unit: "IntReg", Thread: 0, Rate: 3},
		{Cycle: 2000, Kind: KindStopGoEngage, Thread: -1, TempK: 358.6},
	}
	var sb strings.Builder
	if err := WritePerfetto(&sb, TraceOptions{
		FrequencyHz: 4e9, ThreadNames: []string{"solo"}, Events: events,
		Units: []power.Unit{},
	}); err != nil {
		t.Fatal(err)
	}
	begins, ends := 0, 0
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"ph":"B"`) {
			begins++
		}
		if strings.Contains(sc.Text(), `"ph":"E"`) {
			ends++
		}
	}
	if begins != 2 || ends != 2 {
		t.Errorf("begins=%d ends=%d, want 2/2:\n%s", begins, ends, sb.String())
	}
}

func TestWritePerfettoNeedsFrequency(t *testing.T) {
	if err := WritePerfetto(&strings.Builder{}, TraceOptions{}); err == nil {
		t.Error("zero FrequencyHz accepted")
	}
}

func TestEventLogReset(t *testing.T) {
	var nilLog *EventLog
	nilLog.Reset() // must not panic

	l := &EventLog{}
	for i := 0; i < 6; i++ {
		l.Emit(Event{Cycle: int64(i), Kind: KindSedate, Thread: 0})
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("reset left %d events", l.Len())
	}
	// Refilling to the high-water mark reuses the backing array.
	allocs := testing.AllocsPerRun(100, func() {
		l.Reset()
		for i := 0; i < 6; i++ {
			l.Emit(Event{Cycle: int64(i), Kind: KindResume, Thread: 1})
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state emit loop allocates %.1f times per run, want 0", allocs)
	}
	if l.Len() != 6 || l.Events[5].Kind != KindResume {
		t.Fatalf("refill kept %d events", l.Len())
	}
}
