package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
)

// TraceOptions configure the Perfetto (Chrome trace-event JSON)
// export. Open the output in ui.perfetto.dev or chrome://tracing.
//
// Track layout: one named track per hardware thread (tid 0..N-1)
// carrying its sedation slices and OS-report instants; one "dtm" track
// (tid N) carrying stop-and-go slices, emergency trips, and threshold
// crossings; plus per-unit temperature and chip-power counter tracks
// fed by the sensor-interval samples.
type TraceOptions struct {
	// Process names the process track (default "heatstroke").
	Process string
	// FrequencyHz converts cycles to trace microseconds; it must be
	// positive (use the run's cfg.Power.FrequencyHz).
	FrequencyHz float64
	// ThreadNames label the per-thread tracks; tid i is ThreadNames[i].
	ThreadNames []string
	// Events is the DTM event timeline (sim.Result.Events).
	Events []Event
	// Samples, when non-nil, adds temperature and power counters (one
	// value per sensor interval, from the run's trace.Recorder).
	Samples []trace.Sample
	// Units selects the temperature counter tracks (nil = all units).
	Units []power.Unit
}

// traceEvent is one Chrome trace-event object. Field order is fixed
// by the struct, and args maps are rendered with sorted keys, so the
// export is byte-deterministic for a deterministic run.
type traceEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	S    string             `json:"s,omitempty"`
	Args map[string]float64 `json:"args,omitempty"`
}

// metaEvent is a trace metadata record (process/thread names).
type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

const perfettoPid = 1

// TraceEventWriter streams a Chrome trace-event JSON document: the
// {"displayTimeUnit":"ms","traceEvents":[...]} envelope with one
// marshalled event per line and the comma discipline handled here.
// It is shared by the run exporter (WritePerfetto) and the distributed
// tracing span exporter, so both produce the same document shape.
type TraceEventWriter struct {
	bw    *bufio.Writer
	first bool
}

// NewTraceEventWriter opens the trace-event envelope on w.
func NewTraceEventWriter(w io.Writer) *TraceEventWriter {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return &TraceEventWriter{bw: bw, first: true}
}

// Emit marshals one event object into the traceEvents array.
func (tw *TraceEventWriter) Emit(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if !tw.first {
		tw.bw.WriteString(",\n")
	}
	tw.first = false
	tw.bw.Write(b)
	return nil
}

// Close ends the traceEvents array and flushes the document.
func (tw *TraceEventWriter) Close() error {
	tw.bw.WriteString("\n]}\n")
	return tw.bw.Flush()
}

// WritePerfetto renders the run as Chrome trace-event JSON.
func WritePerfetto(w io.Writer, o TraceOptions) error {
	if o.FrequencyHz <= 0 {
		return fmt.Errorf("telemetry: perfetto export needs a positive FrequencyHz, got %g", o.FrequencyHz)
	}
	if o.Process == "" {
		o.Process = "heatstroke"
	}
	if o.Units == nil {
		o.Units = power.Units()
	}
	ts := func(cycle int64) float64 { return float64(cycle) / o.FrequencyHz * 1e6 }
	dtmTid := len(o.ThreadNames)

	tw := NewTraceEventWriter(w)
	emit := tw.Emit

	// Metadata: process and thread names.
	if err := emit(metaEvent{Name: "process_name", Ph: "M", Pid: perfettoPid,
		Args: map[string]string{"name": o.Process}}); err != nil {
		return err
	}
	for tid, name := range o.ThreadNames {
		if err := emit(metaEvent{Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: tid,
			Args: map[string]string{"name": fmt.Sprintf("t%d %s", tid, name)}}); err != nil {
			return err
		}
	}
	if err := emit(metaEvent{Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: dtmTid,
		Args: map[string]string{"name": "dtm"}}); err != nil {
		return err
	}

	// The event timeline. Sedation B/E slices open on a thread's first
	// sedation and close on its resume (a thread sedated for several
	// units stays one slice); stop-and-go brackets become slices on the
	// dtm track; everything else renders as instants.
	lastTs := 0.0
	sedated := make(map[int]bool)
	stopgoOpen := false
	for _, ev := range o.Events {
		t := ts(ev.Cycle)
		if t > lastTs {
			lastTs = t
		}
		switch ev.Kind {
		case KindSedate:
			if ev.Thread >= 0 && !sedated[ev.Thread] {
				sedated[ev.Thread] = true
				if err := emit(traceEvent{Name: "sedated", Ph: "B", Ts: t, Pid: perfettoPid, Tid: ev.Thread,
					Args: map[string]float64{"rate": ev.Rate, "temp_k": ev.TempK}}); err != nil {
					return err
				}
			}
		case KindResume:
			if ev.Thread >= 0 && sedated[ev.Thread] {
				sedated[ev.Thread] = false
				if err := emit(traceEvent{Name: "sedated", Ph: "E", Ts: t, Pid: perfettoPid, Tid: ev.Thread}); err != nil {
					return err
				}
			}
		case KindStopGoEngage:
			if !stopgoOpen {
				stopgoOpen = true
				if err := emit(traceEvent{Name: "stop-and-go", Ph: "B", Ts: t, Pid: perfettoPid, Tid: dtmTid,
					Args: map[string]float64{"temp_k": ev.TempK}}); err != nil {
					return err
				}
			}
		case KindStopGoRelease:
			if stopgoOpen {
				stopgoOpen = false
				if err := emit(traceEvent{Name: "stop-and-go", Ph: "E", Ts: t, Pid: perfettoPid, Tid: dtmTid}); err != nil {
					return err
				}
			}
		case KindOSReport:
			tid := ev.Thread
			if tid < 0 {
				tid = dtmTid
			}
			if err := emit(traceEvent{Name: "os_report " + ev.Unit, Ph: "i", Ts: t, Pid: perfettoPid, Tid: tid, S: "t",
				Args: map[string]float64{"rate": ev.Rate}}); err != nil {
				return err
			}
		default: // threshold crossings, emergencies: instants on the dtm track
			name := string(ev.Kind)
			if ev.Unit != "" {
				name += " " + ev.Unit
			}
			te := traceEvent{Name: name, Ph: "i", Ts: t, Pid: perfettoPid, Tid: dtmTid, S: "t"}
			if ev.TempK != 0 {
				te.Args = map[string]float64{"temp_k": ev.TempK}
			}
			if err := emit(te); err != nil {
				return err
			}
		}
	}

	// Counter tracks from the sensor-interval samples.
	for i := range o.Samples {
		s := &o.Samples[i]
		t := ts(s.Cycle)
		if t > lastTs {
			lastTs = t
		}
		for _, u := range o.Units {
			if err := emit(traceEvent{Name: "temp_" + u.String() + "_K", Ph: "C", Ts: t, Pid: perfettoPid,
				Args: map[string]float64{"K": s.UnitTempK[u]}}); err != nil {
				return err
			}
		}
		if err := emit(traceEvent{Name: "power_W", Ph: "C", Ts: t, Pid: perfettoPid,
			Args: map[string]float64{"W": s.TotalPowerW}}); err != nil {
			return err
		}
	}

	// Close any slice still open so the trace has no dangling begins.
	for tid := 0; tid < len(o.ThreadNames); tid++ {
		if sedated[tid] {
			if err := emit(traceEvent{Name: "sedated", Ph: "E", Ts: lastTs, Pid: perfettoPid, Tid: tid}); err != nil {
				return err
			}
		}
	}
	if stopgoOpen {
		if err := emit(traceEvent{Name: "stop-and-go", Ph: "E", Ts: lastTs, Pid: perfettoPid, Tid: dtmTid}); err != nil {
			return err
		}
	}

	return tw.Close()
}
