package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventKind names one kind of thermal-management event.
type EventKind string

// Event kinds, in rough causal order of an attack timeline.
const (
	// KindThresholdUpper: a unit's die temperature crossed the sedation
	// upper threshold (rising edge); the engine picks a culprit.
	KindThresholdUpper EventKind = "threshold_upper"
	// KindThresholdLower: a hot unit cooled to the lower threshold;
	// every thread sedated for it resumes.
	KindThresholdLower EventKind = "threshold_lower"
	// KindSedate: one thread's fetch was gated for one unit. Thread is
	// the culprit; Rate is its weighted-average accesses/cycle there.
	KindSedate EventKind = "sedate"
	// KindResume: a thread's last sedation was released and fetch
	// re-enabled.
	KindResume EventKind = "resume"
	// KindStopGoEngage / KindStopGoRelease bracket a global
	// stop-and-go stall (the fixed thermal-RC cooling timeout).
	KindStopGoEngage  EventKind = "stopgo_engage"
	KindStopGoRelease EventKind = "stopgo_release"
	// KindEmergency: a sensor observed the emergency temperature
	// (rising edge — the paper's Figure 4 metric).
	KindEmergency EventKind = "emergency"
	// KindOSReport: the engine reported a culprit thread to the
	// operating system (Section 3.2.2).
	KindOSReport EventKind = "os_report"
)

// Event is one typed observation on the DTM timeline. Cycle is the
// core cycle at emission (always a sensor boundary); Thread is -1 for
// events that are not thread-specific; Unit is empty for whole-chip
// events. TempK and Rate are populated where meaningful (the
// triggering temperature, the culprit's EWMA accesses/cycle).
type Event struct {
	Cycle  int64     `json:"cycle"`
	Kind   EventKind `json:"kind"`
	Unit   string    `json:"unit,omitempty"`
	Thread int       `json:"thread"`
	TempK  float64   `json:"temp_k,omitempty"`
	Rate   float64   `json:"rate,omitempty"`
}

// EventLog collects events in emission order. It is owned by the
// simulation run loop: Emit takes no locks and appends to a slice, so
// collection never perturbs the hot path beyond the append. A nil
// *EventLog is a valid no-op sink, which lets the DTM layers emit
// unconditionally.
type EventLog struct {
	Events []Event
}

// Emit appends one event. Safe on a nil receiver (drops the event).
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.Events = append(l.Events, e)
}

// Reset drops all collected events, retaining the backing storage so
// a log drained once per quantum never grows past its high-water mark.
// Safe on a nil receiver. Event slices previously handed out alias the
// storage and become invalid — copy them out first.
func (l *EventLog) Reset() {
	if l == nil {
		return
	}
	l.Events = l.Events[:0]
}

// Len returns the number of collected events (0 on nil).
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Events)
}

// WriteNDJSON writes one compact JSON object per event per line —
// the grep/jq-friendly export, and the input format for downstream
// anomaly-detection tooling (MATTER/HeatSense-style pipelines consume
// exactly such thermal event streams).
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("telemetry: event %d: %w", i, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
