package telemetry

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs by outcome.", L("outcome", "done"))
	c.Inc()
	c.Add(2)
	r.Counter("jobs_total", "Jobs by outcome.", L("outcome", "failed")).Inc()
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(5)
	g.Dec()
	r.GaugeFunc("up", "Always one.", func() float64 { return 1 })

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs by outcome.",
		"# TYPE jobs_total counter",
		`jobs_total{outcome="done"} 3`,
		`jobs_total{outcome="failed"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 4",
		"up 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "help")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("c_total", "help")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has space", "bad-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Job latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 || h.Sum() != 56.05 {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

// expositionLine matches the valid sample and comment lines of text
// format v0.0.4 (the same check the CI smoke job applies to a live
// /metrics scrape).
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN))$`)

func TestExpositionIsWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", `quote " backslash \ newline`+"\n", L("k", `v"w\x`)).Inc()
	r.Gauge("b", "").Set(-1.5e-3)
	r.Histogram("h_seconds", "h", nil).Observe(0.2)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("content type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "c").Inc()
				r.Gauge("g", "g").Add(1)
				r.Histogram("h_seconds", "h", nil).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "c").Value(); got != 8000 {
		t.Errorf("counter = %d", got)
	}
	if got := r.Gauge("g", "g").Value(); got != 8000 {
		t.Errorf("gauge = %v", got)
	}
	if got := r.Histogram("h_seconds", "h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d", got)
	}
}
