// Package telemetry is the unified observability layer: a
// zero-dependency metrics registry with Prometheus text-format
// exposition (heatstroked's GET /metrics), and a structured event
// stream for the thermal-management timeline — threshold crossings,
// sedation start/end with the culprit thread and its EWMA score,
// stop-and-go engage/release, emergency trips, OS culprit reports —
// exportable as NDJSON and as Chrome/Perfetto trace-event JSON.
//
// The paper's argument is temporal (heating in ~1.2 ms, a fixed
// ~10-12.5 ms cooling timeout, sedation engaging at 356 K and
// releasing at 355 K), so the simulator's DTM layers emit typed events
// instead of only aggregate counters; a heat-stroke attack becomes a
// trace you can open in ui.perfetto.dev.
//
// Everything here stays off the simulator hot path: events are
// appended by the single-goroutine run loop at sensor boundaries
// (EventLog takes no locks), and the registry's atomics are touched
// only by the serving layer, never per simulated cycle.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricType is the TYPE line value of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one sample stream inside a family: a concrete label set
// plus its collector.
type series struct {
	labels    []Label
	write     func(w io.Writer, name, labelStr string)
	collector any
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series map[string]*series // keyed by rendered label string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format v0.0.4. All methods are safe for concurrent use;
// registration is idempotent (asking for the same name and labels
// returns the existing collector) and panics on programmer errors —
// an invalid name or a name reused with a different type or help.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName matches the Prometheus metric and label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// labelString renders a sorted {a="b",c="d"} suffix ("" when empty).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// getFamily returns the family, creating or validating it.
func (r *Registry) getFamily(name, help string, typ metricType, labels []Label) (*family, string) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) || l.Name == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l.Name, name))
		}
	}
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
	} else if fam.typ != typ || fam.help != help {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, fam.typ))
	}
	return fam, labelString(labels)
}

// Counter is a monotonically increasing sample stream.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (panics on negative n).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter returns the counter series for name+labels, registering it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ls := r.getFamily(name, help, typeCounter, labels)
	return getOrMake(fam, ls, labels, func() (*Counter, func(io.Writer, string, string)) {
		c := &Counter{}
		return c, func(w io.Writer, name, labelStr string) {
			fmt.Fprintf(w, "%s%s %d\n", name, labelStr, c.Value())
		}
	})
}

// Gauge is a sample stream that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the gauge series for name+labels, registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ls := r.getFamily(name, help, typeGauge, labels)
	return getOrMake(fam, ls, labels, func() (*Gauge, func(io.Writer, string, string)) {
		g := &Gauge{}
		return g, func(w io.Writer, name, labelStr string) {
			fmt.Fprintf(w, "%s%s %s\n", name, labelStr, formatFloat(g.Value()))
		}
	})
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time (e.g. queue depth owned by another structure).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ls := r.getFamily(name, help, typeGauge, labels)
	getOrMake(fam, ls, labels, func() (struct{}, func(io.Writer, string, string)) {
		return struct{}{}, func(w io.Writer, name, labelStr string) {
			fmt.Fprintf(w, "%s%s %s\n", name, labelStr, formatFloat(fn()))
		}
	})
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time (e.g. span totals owned by a tracer's atomics).
// fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ls := r.getFamily(name, help, typeCounter, labels)
	getOrMake(fam, ls, labels, func() (struct{}, func(io.Writer, string, string)) {
		return struct{}{}, func(w io.Writer, name, labelStr string) {
			fmt.Fprintf(w, "%s%s %d\n", name, labelStr, fn())
		}
	})
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative in the exposition; store per-bucket here
	// and accumulate at render time.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefLatencyBuckets are the default buckets for job/simulation
// latencies in seconds.
var DefLatencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// Histogram returns the histogram series for name+labels, registering
// it with the given bucket upper bounds (ascending; nil means
// DefLatencyBuckets) on first use.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ls := r.getFamily(name, help, typeHistogram, labels)
	return getOrMake(fam, ls, labels, func() (*Histogram, func(io.Writer, string, string)) {
		h := &Histogram{bounds: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Uint64, len(buckets))
		return h, func(w io.Writer, name, labelStr string) {
			h.writeProm(w, name, labelStr)
		}
	})
}

// writeProm renders the cumulative _bucket/_sum/_count triplet.
func (h *Histogram) writeProm(w io.Writer, name, labelStr string) {
	// Splice le="..." into the (possibly empty) label set.
	open := func(le string) string {
		pair := `le="` + le + `"`
		if labelStr == "" {
			return "{" + pair + "}"
		}
		return labelStr[:len(labelStr)-1] + "," + pair + "}"
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, open(formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, open("+Inf"), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelStr, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelStr, h.Count())
}

// getOrMake fetches or creates the series for ls, returning its
// collector. The generic parameter keeps each collector constructor
// type-safe without a collector interface.
func getOrMake[T any](fam *family, ls string, labels []Label, mk func() (T, func(io.Writer, string, string))) T {
	if s, ok := fam.series[ls]; ok {
		c, ok := s.collector.(T)
		if !ok {
			panic(fmt.Sprintf("telemetry: series %s%s re-registered with a different collector", fam.name, ls))
		}
		return c
	}
	c, write := mk()
	fam.series[ls] = &series{labels: labels, write: write, collector: c}
	return c
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every family in text exposition format v0.0.4:
// families sorted by name, series sorted by label signature, so the
// output is deterministic for a fixed registry state.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", fam.name, fam.typ)
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fam.series[k].write(&sb, fam.name, k)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Handler serves the registry over HTTP (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
