package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q: want 55-char version-00 header", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestTraceparentAcceptsKnownGood(t *testing.T) {
	sc, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatalf("spec example rejected: %v", err)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		sc.SpanID.String() != "00f067aa0ba902b7" || sc.Flags != 0x01 {
		t.Fatalf("wrong parse: %+v", sc)
	}
	// A future version may carry trailing fields; the first four must
	// still parse.
	if _, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Fatalf("future version with trailing field rejected: %v", err)
	}
}

func TestTraceparentRejectsInvalid(t *testing.T) {
	const (
		tid = "4bf92f3577b34da6a3ce929d0e0e4736"
		sid = "00f067aa0ba902b7"
	)
	cases := map[string]string{
		"empty":              "",
		"too short":          "00-" + tid[:30] + "-" + sid + "-01",
		"version ff":         "ff-" + tid + "-" + sid + "-01",
		"version non-hex":    "zz-" + tid + "-" + sid + "-01",
		"all-zero trace-id":  "00-00000000000000000000000000000000-" + sid + "-01",
		"all-zero parent-id": "00-" + tid + "-0000000000000000-01",
		"uppercase trace-id": "00-" + strings.ToUpper(tid) + "-" + sid + "-01",
		"non-hex trace-id":   "00-" + tid[:31] + "g-" + sid + "-01",
		"short span-id":      "00-" + tid + "-" + sid[:8] + "-01",
		"bad separators":     "00_" + tid + "_" + sid + "_01",
		"non-hex flags":      "00-" + tid + "-" + sid + "-0x",
		"v00 trailing":       "00-" + tid + "-" + sid + "-01-extra",
	}
	for name, in := range cases {
		if sc, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, got %+v", name, in, sc)
		} else if sc.Valid() {
			t.Errorf("%s: error return carries a valid span context", name)
		}
	}
}

func TestTracerRingOverflowDropsOldest(t *testing.T) {
	tr := NewTracer("test", 4)
	tid := NewTraceID().String()
	for i := 0; i < 7; i++ {
		tr.Record(Span{TraceID: tid, SpanID: fmt.Sprintf("%016x", i+1), Name: fmt.Sprintf("s%d", i)})
	}
	if got := tr.Recorded(); got != 7 {
		t.Fatalf("Recorded() = %d, want 7", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3 (ring of 4, 7 records)", got)
	}
	spans := tr.Spans(tid)
	if len(spans) != 4 {
		t.Fatalf("buffered %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+3); s.Name != want {
			t.Errorf("span[%d] = %q, want %q (oldest dropped, order kept)", i, s.Name, want)
		}
	}
	if got := tr.Spans("ffffffffffffffffffffffffffffffff"); len(got) != 0 {
		t.Fatalf("foreign trace id returned %d spans", len(got))
	}
}

func TestStartSpanDisabledIsZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c, sp := StartSpan(ctx, "noop")
		sp.SetAttr("k", "v")
		sp.Link(SpanContext{}, LinkRetry)
		sp.EndErr(nil)
		if c != ctx {
			t.Fatal("disabled StartSpan must return ctx unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan path allocates %.1f per op, want 0", allocs)
	}
}

func TestStartSpanParentsAndLinks(t *testing.T) {
	tr := NewTracer("svc", 16)
	ctx := ContextWithTracer(context.Background(), tr)

	rctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(rctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.SetAttr("attempt", "1")
	grand.Link(root.Context(), LinkRetry)
	grand.End()
	child.End()
	root.EndErr(fmt.Errorf("boom"))

	spans := tr.Spans(root.Context().TraceID.String())
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.Service != "svc" {
			t.Errorf("span %q service = %q, want svc", s.Name, s.Service)
		}
		if s.TraceID != root.Context().TraceID.String() {
			t.Errorf("span %q trace id mismatch", s.Name)
		}
		if s.End < s.Start {
			t.Errorf("span %q ends before it starts", s.Name)
		}
	}
	if byName["root"].ParentID != "" {
		t.Errorf("root has parent %q", byName["root"].ParentID)
	}
	if byName["root"].Attrs["error"] != "boom" {
		t.Errorf("EndErr did not record the error attr: %v", byName["root"].Attrs)
	}
	if got, want := byName["child"].ParentID, byName["root"].SpanID; got != want {
		t.Errorf("child parent = %q, want %q", got, want)
	}
	if got, want := byName["grandchild"].ParentID, byName["child"].SpanID; got != want {
		t.Errorf("grandchild parent = %q, want %q", got, want)
	}
	links := byName["grandchild"].Links
	if len(links) != 1 || links[0].Kind != LinkRetry || links[0].SpanID != byName["root"].SpanID {
		t.Errorf("grandchild links = %+v", links)
	}

	// Ending twice records once.
	before := tr.Recorded()
	child2 := byName["child"]
	_ = child2
	root.End()
	if tr.Recorded() != before {
		t.Error("double End recorded a second span")
	}
}

func TestStartSpanJoinsRemoteParent(t *testing.T) {
	tr := NewTracer("worker", 16)
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	ctx := ContextWithRemote(ContextWithTracer(context.Background(), tr), remote)
	if sc, ok := SpanContextFrom(ctx); !ok || sc != remote {
		t.Fatalf("SpanContextFrom = %+v, %t; want remote", sc, ok)
	}
	_, sp := StartSpan(ctx, "job")
	sp.End()
	spans := tr.Spans(remote.TraceID.String())
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans under the remote trace, want 1", len(spans))
	}
	if spans[0].ParentID != remote.SpanID.String() {
		t.Fatalf("span parent = %q, want remote span id %q", spans[0].ParentID, remote.SpanID)
	}
}

func TestEmitRetroactiveChild(t *testing.T) {
	tr := NewTracer("svc", 16)
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	sc := tr.Emit(parent, "queue.wait", 100, 200, map[string]string{"depth": "3"})
	if !sc.Valid() || sc.TraceID != parent.TraceID {
		t.Fatalf("Emit returned %+v", sc)
	}
	spans := tr.Spans(parent.TraceID.String())
	if len(spans) != 1 || spans[0].Start != 100 || spans[0].End != 200 ||
		spans[0].ParentID != parent.SpanID.String() || spans[0].Attrs["depth"] != "3" {
		t.Fatalf("Emit recorded %+v", spans)
	}
	if sc := tr.Emit(SpanContext{}, "orphan", 0, 1, nil); sc.Valid() {
		t.Fatal("Emit under an invalid parent should not record")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	in := []Span{
		{TraceID: "aa", SpanID: "01", Name: "a", Service: "s1", Start: 1, End: 2,
			Attrs: map[string]string{"k": "v"}, Links: []Link{{TraceID: "aa", SpanID: "02", Kind: LinkHedge}}},
		{TraceID: "aa", SpanID: "02", ParentID: "01", Name: "b", Service: "s2", Start: 2, End: 3},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("read %d spans, want %d", len(got), len(in))
	}
	for i := range in {
		a, _ := json.Marshal(in[i])
		b, _ := json.Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Errorf("span %d: %s != %s", i, a, b)
		}
	}
	if _, err := ReadNDJSON(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("bad record accepted")
	}
}

func TestStitchDedupesAndSorts(t *testing.T) {
	a := []Span{{TraceID: "t", SpanID: "02", Name: "late", Start: 50}}
	b := []Span{
		{TraceID: "t", SpanID: "01", Name: "root", Start: 10},
		{TraceID: "t", SpanID: "02", Name: "dup", Start: 50},
	}
	out := Stitch(a, b)
	if len(out) != 2 {
		t.Fatalf("Stitch kept %d spans, want 2", len(out))
	}
	if out[0].SpanID != "01" || out[1].SpanID != "02" {
		t.Fatalf("Stitch order: %+v", out)
	}
	if out[1].Name != "late" {
		t.Fatalf("dedupe should keep the first occurrence, got %q", out[1].Name)
	}
}

func TestWritePerfettoValidJSON(t *testing.T) {
	spans := []Span{
		{TraceID: "t1", SpanID: "01", Name: "root", Service: "fleet", Start: 1_000_000, End: 5_000_000},
		{TraceID: "t1", SpanID: "02", ParentID: "01", Name: "job", Service: "worker-a",
			Start: 2_000_000, End: 4_000_000, Attrs: map[string]string{"key": "cfg=a"},
			Links: []Link{{TraceID: "t1", SpanID: "01", Kind: LinkRetry}}},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Errorf("complete event %q has dur %g", ev.Name, ev.Dur)
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Fatalf("want 2 complete events, got %d", complete)
	}
	if meta < 3 { // process_name + 2 thread_name
		t.Fatalf("want >=3 metadata events, got %d", meta)
	}
	// Deterministic output for a fixed span set.
	var buf2 bytes.Buffer
	if err := WritePerfetto(&buf2, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Perfetto export is not byte-deterministic")
	}
}
