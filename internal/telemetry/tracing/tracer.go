package tracing

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultCapacity is the span-buffer size used when NewTracer is
// given a non-positive capacity: enough for a few hundred fleet jobs
// in flight, and a hard memory bound of capacity × sizeof(Span) plus
// attr strings regardless of load.
const DefaultCapacity = 8192

// Tracer collects finished spans into a bounded ring buffer. When the
// buffer is full the oldest span is overwritten and the dropped
// counter advances — a flight recorder, not an archive. Record takes
// one short mutex hold (no allocation beyond the span the caller
// already built); the counters are atomics so /metrics exposition
// never contends with recording.
type Tracer struct {
	service string

	mu   sync.Mutex
	buf  []Span
	next int  // index of the slot Record writes next
	full bool // buffer has wrapped at least once

	recorded atomic.Uint64
	dropped  atomic.Uint64
}

// NewTracer returns a tracer whose spans carry the given service name
// (e.g. "heatstroked@http://host:8080" or "fleet") and whose buffer
// holds at most capacity spans (DefaultCapacity if <= 0).
func NewTracer(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{service: service, buf: make([]Span, 0, capacity)}
}

// Service returns the service name stamped on recorded spans.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Record stores one finished span, stamping the tracer's service name
// if the span carries none. Nil-safe: a nil tracer discards.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.Service == "" {
		s.Service = t.service
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.full = true
		t.dropped.Add(1)
	}
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
	t.mu.Unlock()
	t.recorded.Add(1)
}

// Recorded returns the total number of spans ever recorded.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Dropped returns how many spans were evicted by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len returns the number of spans currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// snapshot copies the buffered spans in recording order (oldest
// first) under the lock, filtered by traceID ("" keeps all).
func (t *Tracer) snapshot(traceID string) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	app := func(s *Span) {
		if traceID == "" || s.TraceID == traceID {
			out = append(out, *s)
		}
	}
	if t.full {
		for i := t.next; i < len(t.buf); i++ {
			app(&t.buf[i])
		}
	}
	for i := 0; i < t.next; i++ {
		app(&t.buf[i])
	}
	return out
}

// Spans returns every buffered span of the given trace, oldest first.
func (t *Tracer) Spans(traceID string) []Span {
	if t == nil {
		return nil
	}
	return t.snapshot(traceID)
}

// All returns every buffered span, oldest first.
func (t *Tracer) All() []Span {
	if t == nil {
		return nil
	}
	return t.snapshot("")
}

// Emit records a completed child span of parent with explicit
// timestamps, for operations whose start predates the decision to
// trace them (e.g. queue wait, measured submit→slot). It returns the
// new span's context so callers can link to it.
func (t *Tracer) Emit(parent SpanContext, name string, startNS, endNS int64, attrs map[string]string) SpanContext {
	if t == nil || !parent.Valid() {
		return SpanContext{}
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID(), Flags: parent.Flags}
	t.Record(Span{
		TraceID:  sc.TraceID.String(),
		SpanID:   sc.SpanID.String(),
		ParentID: parent.SpanID.String(),
		Name:     name,
		Start:    startNS,
		End:      endNS,
		Attrs:    attrs,
	})
	return sc
}

// SortSpans orders spans deterministically: start time, then trace
// id, then span id. Exports and /v1/traces responses sort so equal
// inputs render equal bytes.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		return a.SpanID < b.SpanID
	})
}

// Stitch merges span sets collected from several nodes into one
// deterministic tree: duplicates (same trace and span id — a span
// fetched from both a flight-recorder file and a live buffer) keep
// the first occurrence, and the result is sorted with SortSpans so
// parents, which start no later than their children, precede them.
func Stitch(groups ...[]Span) []Span {
	seen := make(map[[2]string]bool)
	var out []Span
	for _, g := range groups {
		for _, s := range g {
			k := [2]string{s.TraceID, s.SpanID}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, s)
		}
	}
	SortSpans(out)
	return out
}
