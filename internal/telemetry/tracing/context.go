package tracing

import (
	"context"
	"time"
)

type ctxKey int

const (
	tracerKey ctxKey = iota
	activeKey
	remoteKey
)

// ContextWithTracer returns a context carrying the tracer. StartSpan
// is a no-op (and allocation-free) on contexts without one.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithRemote returns a context carrying a span context received
// from another process (a parsed traceparent header). Spans started
// under it parent there, joining the remote trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// Active returns the context's active span, or nil. The nil
// *ActiveSpan is a valid receiver for every method.
func Active(ctx context.Context) *ActiveSpan {
	a, _ := ctx.Value(activeKey).(*ActiveSpan)
	return a
}

// SpanContextFrom returns the span context the current operation runs
// under: the active span if one is open, else a remote parent carried
// by ContextWithRemote. Used to stamp outgoing traceparent headers.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if a := Active(ctx); a != nil {
		return a.Context(), true
	}
	sc, ok := ctx.Value(remoteKey).(SpanContext)
	return sc, ok && sc.Valid()
}

// ActiveSpan is an open span being timed. It is created by StartSpan
// and recorded into the tracer by End. Methods on a nil receiver are
// no-ops, so instrumented code never branches on whether tracing is
// enabled. An ActiveSpan is intended for use by the goroutine that
// started it (plus End-after-attrs ordering within that goroutine);
// concurrent children each start their own span.
type ActiveSpan struct {
	tracer *Tracer
	sc     SpanContext
	span   Span
	ended  bool
}

// Context returns the span's identity (zero for a nil span).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return a.sc
}

// SetAttr attaches a string attribute.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[k] = v
}

// Link attaches a causal link (retry, hedge, fork-prefix reuse) to
// another span.
func (a *ActiveSpan) Link(sc SpanContext, kind string) {
	if a == nil || !sc.Valid() {
		return
	}
	a.span.Links = append(a.span.Links, Link{
		TraceID: sc.TraceID.String(),
		SpanID:  sc.SpanID.String(),
		Kind:    kind,
	})
}

// End stamps the end time and records the span. Safe to call more
// than once; only the first call records.
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.End = time.Now().UnixNano()
	a.tracer.Record(a.span)
}

// EndErr ends the span, attaching the error as an attribute when
// non-nil.
func (a *ActiveSpan) EndErr(err error) {
	if a == nil {
		return
	}
	if err != nil {
		a.SetAttr("error", err.Error())
	}
	a.End()
}

// StartSpan opens a span named name. If the context carries no tracer
// this is a no-op costing two context lookups and zero allocations,
// returning ctx unchanged and a nil span. Otherwise the span parents
// under the context's active span, or a remote span context, or —
// with neither — starts a new trace with a fresh trace id.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := SpanContextFrom(ctx)
	sc := SpanContext{SpanID: NewSpanID(), Flags: FlagSampled}
	parentID := ""
	if parent.Valid() {
		sc.TraceID = parent.TraceID
		sc.Flags = parent.Flags | FlagSampled
		parentID = parent.SpanID.String()
	} else {
		sc.TraceID = NewTraceID()
	}
	a := &ActiveSpan{
		tracer: t,
		sc:     sc,
		span: Span{
			TraceID:  sc.TraceID.String(),
			SpanID:   sc.SpanID.String(),
			ParentID: parentID,
			Name:     name,
			Start:    time.Now().UnixNano(),
		},
	}
	return context.WithValue(ctx, activeKey, a), a
}
