package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
)

// WriteNDJSON renders one span per line, in the given order. The
// per-node flight-recorder files and the heatstroke-trace -stitch
// input format.
func WriteNDJSON(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses spans written by WriteNDJSON, skipping blank
// lines.
func ReadNDJSON(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("tracing: bad span record: %w", err)
		}
		out = append(out, s)
	}
}

// spanEvent is one Chrome trace-event "X" (complete) record for a
// span: microsecond timestamp and duration, string args. Field order
// is fixed by the struct so the export is byte-deterministic for a
// fixed span set.
type spanEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// spanMeta is a process/thread-name metadata record.
type spanMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WritePerfetto renders spans as Chrome trace-event JSON (open in
// ui.perfetto.dev): one track per service, sorted by first
// appearance-independent service name so the output is deterministic;
// each span is an "X" complete event whose args carry the span and
// parent ids, attributes, and links. Timestamps are microseconds
// relative to the earliest span start.
func WritePerfetto(w io.Writer, spans []Span) error {
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	SortSpans(ordered)

	services := make(map[string]int)
	var names []string
	for i := range ordered {
		svc := ordered[i].Service
		if svc == "" {
			svc = "unknown"
		}
		if _, ok := services[svc]; !ok {
			services[svc] = 0
			names = append(names, svc)
		}
	}
	sort.Strings(names)
	for tid, svc := range names {
		services[svc] = tid
	}

	var t0 int64
	if len(ordered) > 0 {
		t0 = ordered[0].Start
		for i := range ordered {
			if ordered[i].Start < t0 {
				t0 = ordered[i].Start
			}
		}
	}

	tw := telemetry.NewTraceEventWriter(w)
	if err := tw.Emit(spanMeta{Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "heatstroke trace"}}); err != nil {
		return err
	}
	for tid, svc := range names {
		if err := tw.Emit(spanMeta{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": svc}}); err != nil {
			return err
		}
	}
	for i := range ordered {
		s := &ordered[i]
		svc := s.Service
		if svc == "" {
			svc = "unknown"
		}
		args := make(map[string]string, len(s.Attrs)+3)
		for k, v := range s.Attrs {
			args[k] = v
		}
		args["trace_id"] = s.TraceID
		args["span_id"] = s.SpanID
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		for j, l := range s.Links {
			args[fmt.Sprintf("link_%d", j)] = l.Kind + ":" + l.SpanID
		}
		dur := float64(s.End-s.Start) / 1e3
		if dur < 0 {
			dur = 0
		}
		if err := tw.Emit(spanEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start-t0) / 1e3,
			Dur:  dur,
			Pid:  1,
			Tid:  services[svc],
			Args: args,
		}); err != nil {
			return err
		}
	}
	return tw.Close()
}
