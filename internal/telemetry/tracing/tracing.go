// Package tracing is a zero-dependency distributed-tracing layer for
// the heatstroke serving stack: W3C trace-context identifiers and
// traceparent encoding, request-scoped spans with parent links, a
// bounded lock-cheap per-process span buffer, and NDJSON + Perfetto
// exporters. It exists so a single job's latency story — client
// submit, coordinator dispatch (including retries and hedges), worker
// queue wait, warmup restore, fork-prefix reuse, and each simulated
// measurement quantum — is one causally linked timeline instead of a
// pile of aggregate counters.
//
// Everything is allocation-free when tracing is off: StartSpan on a
// context with no tracer is a pair of context lookups and returns a
// nil *ActiveSpan, whose methods are all nil-safe no-ops. Spans never
// feed back into simulation state, so enabling tracing cannot perturb
// results (enforced by the determinism guard tests).
package tracing

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceID is the 16-byte W3C trace-id shared by every span of one
// request.
type TraceID [16]byte

// SpanID is the 8-byte W3C span/parent id of a single span.
type SpanID [8]byte

// IsZero reports whether the id is all zeroes (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is all zeroes (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		rand.Read(t[:])
	}
	return t
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		rand.Read(s[:])
	}
	return s
}

// FlagSampled is the traceparent sampled flag bit.
const FlagSampled = 0x01

// SpanContext identifies one span's position in a trace: the trace it
// belongs to, its own id, and the trace flags. It is the unit of
// propagation — what crosses process boundaries in the traceparent
// header and what children parent under.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both ids are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the W3C version-00 header value:
// 00-<trace-id>-<parent-id>-<flags>.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, sc.Flags)
}

// parseHex decodes exactly len(dst)*2 lowercase hex characters.
// Uppercase hex is invalid per the W3C trace-context spec.
func parseHex(dst, src []byte) bool {
	if len(src) != len(dst)*2 {
		return false
	}
	for _, c := range src {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	_, err := hex.Decode(dst, src)
	return err == nil
}

// ParseTraceparent parses a W3C traceparent header value. Per the
// spec it rejects: a version of "ff" or non-hex, an all-zero trace-id
// or parent-id, wrong field lengths, and (for version 00) trailing
// fields. Future versions are accepted if their first four fields
// parse, ignoring anything after.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2) = 55.
	if len(s) < 55 {
		return sc, fmt.Errorf("tracing: traceparent too short (%d chars)", len(s))
	}
	var version [1]byte
	if !parseHex(version[:], []byte(s[0:2])) || version[0] == 0xff {
		return sc, fmt.Errorf("tracing: invalid traceparent version %q", s[0:2])
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("tracing: malformed traceparent %q", s)
	}
	if !parseHex(sc.TraceID[:], []byte(s[3:35])) {
		return SpanContext{}, fmt.Errorf("tracing: invalid trace-id %q", s[3:35])
	}
	if sc.TraceID.IsZero() {
		return SpanContext{}, fmt.Errorf("tracing: all-zero trace-id")
	}
	if !parseHex(sc.SpanID[:], []byte(s[36:52])) {
		return SpanContext{}, fmt.Errorf("tracing: invalid parent-id %q", s[36:52])
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("tracing: all-zero parent-id")
	}
	var flags [1]byte
	if !parseHex(flags[:], []byte(s[53:55])) {
		return SpanContext{}, fmt.Errorf("tracing: invalid trace-flags %q", s[53:55])
	}
	sc.Flags = flags[0]
	switch {
	case version[0] == 0 && len(s) != 55:
		return SpanContext{}, fmt.Errorf("tracing: version 00 traceparent has trailing data")
	case version[0] != 0 && len(s) > 55 && s[55] != '-':
		return SpanContext{}, fmt.Errorf("tracing: malformed traceparent %q", s)
	}
	return sc, nil
}

// Link is a causal reference from one span to another that is not its
// parent: a retried attempt points at the attempt it replaces, a
// hedged dispatch at the primary it races, a fork leaf at the shared
// prefix whose state it reused.
type Link struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Kind    string `json:"kind,omitempty"`
}

// Link kinds used by the instrumentation.
const (
	LinkRetry      = "retry"       // this attempt replaces the linked failed attempt
	LinkHedge      = "hedge"       // this dispatch races the linked primary
	LinkForkPrefix = "fork_prefix" // this leaf reused the linked prefix's warm state
	LinkWarmReuse  = "warm_reuse"  // this job reused the linked warmup build's state
)

// Span is one completed timed operation. IDs are rendered as lowercase
// hex strings so the wire form (NDJSON, /v1/traces) needs no further
// encoding and stitching across nodes is plain string comparison.
type Span struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Service  string            `json:"service,omitempty"`
	Start    int64             `json:"start_unix_ns"`
	End      int64             `json:"end_unix_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Links    []Link            `json:"links,omitempty"`
}

// Context returns the span's identity as a SpanContext (zero if the
// hex ids do not parse).
func (s *Span) Context() SpanContext {
	var sc SpanContext
	if !parseHex(sc.TraceID[:], []byte(s.TraceID)) || !parseHex(sc.SpanID[:], []byte(s.SpanID)) {
		return SpanContext{}
	}
	sc.Flags = FlagSampled
	return sc
}
