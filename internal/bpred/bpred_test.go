package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwoBitCounter(t *testing.T) {
	c := twoBit(0)
	for i := 0; i < 5; i++ {
		c = c.train(Taken)
	}
	if c != 3 {
		t.Fatalf("saturate up: got %d", c)
	}
	c = c.train(NotTaken)
	if !c.taken() {
		t.Fatal("one not-taken from saturated should still predict taken")
	}
	c = c.train(NotTaken)
	if c.taken() {
		t.Fatal("two not-taken should flip prediction")
	}
	for i := 0; i < 5; i++ {
		c = c.train(NotTaken)
	}
	if c != 0 {
		t.Fatalf("saturate down: got %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(10)
	const pc = 0x40
	for i := 0; i < 4; i++ {
		p.Update(pc, Taken)
	}
	if p.Predict(pc) != Taken {
		t.Fatal("bimodal failed to learn all-taken branch")
	}
	// An aliasing-free second branch learns independently.
	const pc2 = 0x41
	for i := 0; i < 4; i++ {
		p.Update(pc2, NotTaken)
	}
	if p.Predict(pc2) != NotTaken || p.Predict(pc) != Taken {
		t.Fatal("independent branches interfered")
	}
}

func accuracy(p Predictor, outcomes []Outcome, pc uint64) float64 {
	correct := 0
	for _, o := range outcomes {
		if p.Predict(pc) == o {
			correct++
		}
		p.Update(pc, o)
	}
	return float64(correct) / float64(len(outcomes))
}

func TestGshareLearnsAlternating(t *testing.T) {
	// T,N,T,N... defeats bimodal but is perfectly history-predictable.
	outcomes := make([]Outcome, 2000)
	for i := range outcomes {
		outcomes[i] = Outcome(i%2 == 0)
	}
	g := accuracy(NewGshare(12), outcomes, 0x99)
	b := accuracy(NewBimodal(12), outcomes, 0x99)
	if g < 0.95 {
		t.Errorf("gshare accuracy %.2f on alternating pattern, want > 0.95", g)
	}
	if b > 0.7 {
		t.Errorf("bimodal accuracy %.2f on alternating pattern, expected poor", b)
	}
}

func TestTournamentTracksBest(t *testing.T) {
	// Biased-random stream: bimodal should do well; tournament must not
	// do noticeably worse than the better component.
	rng := rand.New(rand.NewSource(42))
	outcomes := make([]Outcome, 4000)
	for i := range outcomes {
		outcomes[i] = Outcome(rng.Float64() < 0.9)
	}
	tour := accuracy(NewTournament(12), append([]Outcome(nil), outcomes...), 0x7)
	bim := accuracy(NewBimodal(12), append([]Outcome(nil), outcomes...), 0x7)
	if tour < bim-0.05 {
		t.Errorf("tournament %.3f much worse than bimodal %.3f", tour, bim)
	}

	// Alternating stream: must approach gshare.
	for i := range outcomes {
		outcomes[i] = Outcome(i%2 == 0)
	}
	tour = accuracy(NewTournament(12), outcomes, 0x7)
	if tour < 0.9 {
		t.Errorf("tournament %.3f on alternating pattern, want > 0.9", tour)
	}
}

func TestPredictorReset(t *testing.T) {
	for _, kind := range []string{"bimodal", "gshare", "tournament"} {
		p, err := New(kind, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			p.Update(5, Taken)
		}
		p.Reset()
		if p.Predict(5) != NotTaken {
			t.Errorf("%s: reset did not clear state", kind)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("neural", 10); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := New("bimodal", 0); err == nil {
		t.Error("zero bits should fail")
	}
	if _, err := New("bimodal", 30); err == nil {
		t.Error("oversized table should fail")
	}
}

func TestBTB(t *testing.T) {
	b, err := NewBTB(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := b.Lookup(100); hit {
		t.Fatal("empty BTB should miss")
	}
	b.Insert(100, 7)
	if tgt, hit := b.Lookup(100); !hit || tgt != 7 {
		t.Fatalf("lookup = %d,%v", tgt, hit)
	}
	// Re-insert updates in place.
	b.Insert(100, 9)
	if tgt, _ := b.Lookup(100); tgt != 9 {
		t.Fatalf("update failed: %d", tgt)
	}
	// Fill one set (4 sets -> same set every 4 pcs) beyond capacity; the
	// LRU entry is evicted.
	for i := uint64(0); i < 5; i++ {
		b.Insert(4+i*4, int32(i))
	}
	if _, hit := b.Lookup(4); hit {
		t.Error("LRU entry should have been evicted")
	}
	if _, hit := b.Lookup(4 + 4*4); !hit {
		t.Error("most recent entry missing")
	}
	if _, err := NewBTB(10, 4); err == nil {
		t.Error("non-divisible geometry should fail")
	}
	if _, err := NewBTB(12, 4); err == nil {
		t.Error("non-power-of-two sets should fail")
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS should not pop")
	}
	for i := int32(1); i <= 3; i++ {
		r.Push(i)
	}
	for want := int32(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	// Overflow wraps, keeping the most recent entries.
	for i := int32(1); i <= 6; i++ {
		r.Push(i)
	}
	got, ok := r.Pop()
	if !ok || got != 6 {
		t.Fatalf("after wrap pop = %d, want 6", got)
	}
}

// TestQuickPredictorsDeterministic property: a predictor fed the same
// stream twice produces the same prediction sequence.
func TestQuickPredictorsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]Outcome, 300)
		pcs := make([]uint64, 300)
		for i := range stream {
			stream[i] = Outcome(rng.Intn(2) == 0)
			pcs[i] = uint64(rng.Intn(64))
		}
		run := func() []Outcome {
			p := NewTournament(8)
			out := make([]Outcome, len(stream))
			for i := range stream {
				out[i] = p.Predict(pcs[i])
				p.Update(pcs[i], stream[i])
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
