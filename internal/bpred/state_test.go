package bpred

import (
	"math/rand"
	"reflect"
	"testing"
)

// trainRandom drives p with a deterministic pseudo-random branch
// stream.
func trainRandom(p Predictor, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pc := uint64(rng.Intn(4096))
		p.Update(pc, Outcome(rng.Intn(2) == 0))
	}
}

// agree checks that two predictors answer identically on a shared
// deterministic stream, including the table updates along the way.
func agree(t *testing.T, a, b Predictor, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pc := uint64(rng.Intn(4096))
		if pa, pb := a.Predict(pc), b.Predict(pc); pa != pb {
			t.Fatalf("step %d pc %#x: predictions diverge (%v vs %v)", i, pc, pa, pb)
		}
		actual := Outcome(rng.Intn(2) == 0)
		a.Update(pc, actual)
		b.Update(pc, actual)
	}
}

func TestPredictorSnapshotRestore(t *testing.T) {
	for _, kind := range []string{"bimodal", "gshare", "tournament"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			a, err := New(kind, 10)
			if err != nil {
				t.Fatal(err)
			}
			trainRandom(a, 7, 5000)
			st, err := Snapshot(a)
			if err != nil {
				t.Fatal(err)
			}
			if st.Kind != kind {
				t.Fatalf("snapshot kind %q", st.Kind)
			}

			b, err := New(kind, 10)
			if err != nil {
				t.Fatal(err)
			}
			if err := Restore(b, st); err != nil {
				t.Fatal(err)
			}
			agree(t, a, b, 11, 5000)

			// The snapshot is a copy: the training above must not have
			// changed it, and restoring it again must reproduce the
			// pre-training state, not the current one.
			st2, err := Snapshot(a)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(st, st2) {
				t.Fatal("training did not change the state — test is vacuous")
			}
		})
	}
}

func TestPredictorRestoreErrors(t *testing.T) {
	g := NewGshare(10)
	st, err := Snapshot(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(NewBimodal(10), st); err == nil {
		t.Error("gshare state into bimodal should fail")
	}
	if err := Restore(NewGshare(8), st); err == nil {
		t.Error("mismatched table size should fail")
	}
	bad := st
	bad.Gshare = append([]uint8(nil), st.Gshare...)
	bad.Gshare[0] = 4
	if err := Restore(NewGshare(10), bad); err == nil {
		t.Error("out-of-range counter should fail")
	}
}

func TestRestoreMasksHistory(t *testing.T) {
	g := NewGshare(10)
	st, err := Snapshot(g)
	if err != nil {
		t.Fatal(err)
	}
	st.History = ^uint64(0)
	if err := Restore(g, st); err != nil {
		t.Fatal(err)
	}
	if g.history >= 1<<g.histLen {
		t.Fatalf("history %#x not masked to %d bits", g.history, g.histLen)
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	a := NewRAS(8)
	for i := int32(0); i < 11; i++ { // deliberately wrap the stack
		a.Push(100 + i)
	}
	a.Pop()
	st := a.Snapshot()

	b := NewRAS(8)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // drain past depth: ok flags must agree too
		ra, oka := a.Pop()
		rb, okb := b.Pop()
		if ra != rb || oka != okb {
			t.Fatalf("pop %d: (%d,%v) vs (%d,%v)", i, ra, oka, rb, okb)
		}
	}

	if err := NewRAS(4).Restore(st); err == nil {
		t.Error("mismatched capacity should fail")
	}
	bad := st
	bad.Top = 99
	if err := NewRAS(8).Restore(bad); err == nil {
		t.Error("out-of-range top should fail")
	}
}
