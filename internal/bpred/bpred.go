// Package bpred implements the branch predictors used by the SMT
// pipeline: bimodal, gshare, and a tournament (combining) predictor,
// plus a branch target buffer and per-context return-address stacks.
// State is private per hardware context, as in the paper's simulator.
package bpred

import "fmt"

// Outcome is the resolved direction of a conditional branch.
type Outcome bool

// Branch directions.
const (
	NotTaken Outcome = false
	Taken    Outcome = true
)

// Predictor predicts conditional-branch directions.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) Outcome
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, actual Outcome)
	// Reset clears all state.
	Reset()
}

// twoBit is a saturating two-bit counter: 0,1 predict not-taken; 2,3
// predict taken.
type twoBit uint8

func (c twoBit) taken() bool { return c >= 2 }

func (c twoBit) train(actual Outcome) twoBit {
	if actual == Taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of two-bit counters.
type Bimodal struct {
	table []twoBit
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) *Bimodal {
	size := 1 << bits
	return &Bimodal{table: make([]twoBit, size), mask: uint64(size - 1)}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) Outcome { return Outcome(b.table[pc&b.mask].taken()) }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, actual Outcome) {
	i := pc & b.mask
	b.table[i] = b.table[i].train(actual)
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
}

// Gshare XORs a global history register into the table index.
type Gshare struct {
	table   []twoBit
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare returns a gshare predictor with 2^bits counters and a
// history length equal to bits (classic configuration).
func NewGshare(bits int) *Gshare {
	size := 1 << bits
	return &Gshare{table: make([]twoBit, size), mask: uint64(size - 1), histLen: uint(bits)}
}

func (g *Gshare) index(pc uint64) uint64 { return (pc ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) Outcome { return Outcome(g.table[g.index(pc)].taken()) }

// Update implements Predictor. The global history is updated
// speculatively at predict time in real designs; updating at resolve
// time is the standard simulator simplification.
func (g *Gshare) Update(pc uint64, actual Outcome) {
	i := g.index(pc)
	g.table[i] = g.table[i].train(actual)
	g.history = (g.history << 1) & ((1 << g.histLen) - 1)
	if actual == Taken {
		g.history |= 1
	}
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.history = 0
}

// Tournament selects between a bimodal and a gshare component with a
// table of two-bit chooser counters (0,1 favour bimodal; 2,3 gshare).
type Tournament struct {
	bimodal *Bimodal
	gshare  *Gshare
	chooser []twoBit
	mask    uint64
}

// NewTournament returns a tournament predictor with 2^bits entries per
// component.
func NewTournament(bits int) *Tournament {
	size := 1 << bits
	return &Tournament{
		bimodal: NewBimodal(bits),
		gshare:  NewGshare(bits),
		chooser: make([]twoBit, size),
		mask:    uint64(size - 1),
	}
}

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) Outcome {
	if t.chooser[pc&t.mask].taken() {
		return t.gshare.Predict(pc)
	}
	return t.bimodal.Predict(pc)
}

// Update implements Predictor: both components train; the chooser moves
// toward whichever component was right when they disagree.
func (t *Tournament) Update(pc uint64, actual Outcome) {
	bp := t.bimodal.Predict(pc)
	gp := t.gshare.Predict(pc)
	if bp != gp {
		i := pc & t.mask
		if gp == actual {
			t.chooser[i] = t.chooser[i].train(Taken)
		} else {
			t.chooser[i] = t.chooser[i].train(NotTaken)
		}
	}
	t.bimodal.Update(pc, actual)
	t.gshare.Update(pc, actual)
}

// Reset implements Predictor.
func (t *Tournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	for i := range t.chooser {
		t.chooser[i] = 0
	}
}

// New constructs a predictor by kind: "bimodal", "gshare", or
// "tournament".
func New(kind string, bits int) (Predictor, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("bpred: table bits %d out of range [1,24]", bits)
	}
	switch kind {
	case "bimodal":
		return NewBimodal(bits), nil
	case "gshare":
		return NewGshare(bits), nil
	case "tournament":
		return NewTournament(bits), nil
	default:
		return nil, fmt.Errorf("bpred: unknown predictor kind %q", kind)
	}
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets  int
	assoc int
	tags  []uint64
	tgts  []int32
	valid []bool
	lru   []uint64
	clock uint64
}

// NewBTB returns a BTB with the given total entries and associativity.
func NewBTB(entries, assoc int) (*BTB, error) {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		return nil, fmt.Errorf("bpred: bad BTB geometry %d entries / %d ways", entries, assoc)
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("bpred: BTB set count %d must be a power of two", sets)
	}
	return &BTB{
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint64, entries),
		tgts:  make([]int32, entries),
		valid: make([]bool, entries),
		lru:   make([]uint64, entries),
	}, nil
}

// Lookup returns the predicted target for the branch at pc.
func (b *BTB) Lookup(pc uint64) (target int32, hit bool) {
	set := int(pc) & (b.sets - 1)
	base := set * b.assoc
	for w := 0; w < b.assoc; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.clock++
			b.lru[i] = b.clock
			return b.tgts[i], true
		}
	}
	return 0, false
}

// Insert records the resolved target for the branch at pc.
func (b *BTB) Insert(pc uint64, target int32) {
	set := int(pc) & (b.sets - 1)
	base := set * b.assoc
	victim := base
	for w := 0; w < b.assoc; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			victim = i
			break
		}
		if !b.valid[i] {
			victim = i
			break
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.clock++
	b.tags[victim] = pc
	b.tgts[victim] = target
	b.valid[victim] = true
	b.lru[victim] = b.clock
}

// RAS is a circular return-address stack.
type RAS struct {
	stack []int32
	top   int
	depth int
}

// NewRAS returns a return-address stack with the given capacity.
func NewRAS(entries int) *RAS {
	if entries < 1 {
		entries = 1
	}
	return &RAS{stack: make([]int32, entries)}
}

// Push records a call's return address.
func (r *RAS) Push(ret int32) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = ret
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the return address for a ret.
func (r *RAS) Pop() (ret int32, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	ret = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return ret, true
}
