package bpred

import (
	"fmt"
	"slices"
)

// PredictorState is the serializable state of any built-in predictor.
// Kind selects which fields are meaningful: "bimodal" uses Bimodal,
// "gshare" uses Gshare+History, "tournament" uses all of them. Counter
// tables are stored as raw bytes so the struct stays gob/JSON-friendly.
type PredictorState struct {
	Kind    string
	Bimodal []uint8
	Gshare  []uint8
	History uint64
	Chooser []uint8
}

// RASState is the serializable state of a return-address stack. The
// capacity is carried implicitly by len(Stack) and checked on restore.
type RASState struct {
	Stack []int32
	Top   int
	Depth int
}

// Clone returns a deep copy of the predictor state.
func (st PredictorState) Clone() PredictorState {
	out := st
	out.Bimodal = slices.Clone(st.Bimodal)
	out.Gshare = slices.Clone(st.Gshare)
	out.Chooser = slices.Clone(st.Chooser)
	return out
}

// Clone returns a deep copy of the stack state.
func (st RASState) Clone() RASState {
	out := st
	out.Stack = slices.Clone(st.Stack)
	return out
}

func copyCounters(t []twoBit) []uint8 {
	out := make([]uint8, len(t))
	for i, c := range t {
		out[i] = uint8(c)
	}
	return out
}

func restoreCounters(dst []twoBit, src []uint8, what string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("bpred: %s table length %d, want %d", what, len(src), len(dst))
	}
	for i, v := range src {
		if v > 3 {
			return fmt.Errorf("bpred: %s counter %d out of range", what, v)
		}
		dst[i] = twoBit(v)
	}
	return nil
}

// Snapshot returns a deep copy of the predictor's state. It supports
// the built-in kinds only; the snapshot never aliases live tables, so
// one snapshot can seed many independent predictors.
func Snapshot(p Predictor) (PredictorState, error) {
	switch v := p.(type) {
	case *Bimodal:
		return PredictorState{Kind: "bimodal", Bimodal: copyCounters(v.table)}, nil
	case *Gshare:
		return PredictorState{Kind: "gshare", Gshare: copyCounters(v.table), History: v.history}, nil
	case *Tournament:
		return PredictorState{
			Kind:    "tournament",
			Bimodal: copyCounters(v.bimodal.table),
			Gshare:  copyCounters(v.gshare.table),
			History: v.gshare.history,
			Chooser: copyCounters(v.chooser),
		}, nil
	default:
		return PredictorState{}, fmt.Errorf("bpred: cannot snapshot predictor type %T", p)
	}
}

// Restore loads st into p, which must be a built-in predictor of the
// matching kind and geometry. The state is copied, never aliased.
func Restore(p Predictor, st PredictorState) error {
	switch v := p.(type) {
	case *Bimodal:
		if st.Kind != "bimodal" {
			return fmt.Errorf("bpred: restoring %q state into bimodal", st.Kind)
		}
		return restoreCounters(v.table, st.Bimodal, "bimodal")
	case *Gshare:
		if st.Kind != "gshare" {
			return fmt.Errorf("bpred: restoring %q state into gshare", st.Kind)
		}
		if err := restoreCounters(v.table, st.Gshare, "gshare"); err != nil {
			return err
		}
		v.history = st.History & ((1 << v.histLen) - 1)
		return nil
	case *Tournament:
		if st.Kind != "tournament" {
			return fmt.Errorf("bpred: restoring %q state into tournament", st.Kind)
		}
		if err := restoreCounters(v.bimodal.table, st.Bimodal, "tournament/bimodal"); err != nil {
			return err
		}
		if err := restoreCounters(v.gshare.table, st.Gshare, "tournament/gshare"); err != nil {
			return err
		}
		if err := restoreCounters(v.chooser, st.Chooser, "tournament/chooser"); err != nil {
			return err
		}
		v.gshare.history = st.History & ((1 << v.gshare.histLen) - 1)
		return nil
	default:
		return fmt.Errorf("bpred: cannot restore predictor type %T", p)
	}
}

// Snapshot returns a deep copy of the stack's state.
func (r *RAS) Snapshot() RASState {
	return RASState{Stack: append([]int32(nil), r.stack...), Top: r.top, Depth: r.depth}
}

// Restore loads st into r. The stack capacity must match.
func (r *RAS) Restore(st RASState) error {
	if len(st.Stack) != len(r.stack) {
		return fmt.Errorf("bpred: RAS capacity %d, want %d", len(st.Stack), len(r.stack))
	}
	if st.Top < 0 || st.Top >= len(r.stack) || st.Depth < 0 || st.Depth > len(r.stack) {
		return fmt.Errorf("bpred: RAS top %d / depth %d out of range for capacity %d",
			st.Top, st.Depth, len(r.stack))
	}
	copy(r.stack, st.Stack)
	r.top = st.Top
	r.depth = st.Depth
	return nil
}
