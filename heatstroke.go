// Package heatstroke is a simulation library reproducing "Heat Stroke:
// Power-Density-Based Denial of Service in SMT" (Hasan, Jalote,
// Vijaykumar, Brodley — HPCA 2005).
//
// It bundles a cycle-level SMT out-of-order processor simulator, a
// Wattch-like activity-based power model, a HotSpot-like RC thermal
// model, synthetic SPEC2K-like workloads, the paper's malicious
// attack variants, the dynamic-thermal-management baselines
// (stop-and-go, DVS), and the paper's contribution — selective
// sedation — plus a harness that regenerates every table and figure of
// the paper's evaluation.
//
// # Quick start
//
//	cfg := heatstroke.DefaultConfig()
//	victim, _ := heatstroke.SpecProgram("crafty", 1)
//	attacker, _ := heatstroke.Variant(2)
//	s, _ := heatstroke.NewSimulator(cfg,
//		[]heatstroke.Thread{
//			{Name: "crafty", Prog: victim},
//			{Name: "variant2", Prog: attacker},
//		},
//		heatstroke.Options{Policy: heatstroke.PolicySelectiveSedation})
//	res, _ := s.Run()
//	fmt.Println(res.Threads[0].IPC, res.Emergencies)
//
// See the examples directory for runnable programs and DESIGN.md for
// the system inventory.
package heatstroke

import (
	"context"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	score "github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/experiment"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/osched"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// Config is the complete machine description (Table 1 of the paper plus
// the sedation and reproduction knobs).
type Config = config.Config

// DefaultConfig returns the paper's machine with the reproduction
// defaults (thermal scale 16, 4M-cycle quantum) documented in DESIGN.md.
func DefaultConfig() Config { return config.Default() }

// PaperConfig returns the machine exactly as in Table 1: unscaled
// thermal constants and a 500M-cycle OS quantum.
func PaperConfig() Config { return config.Paper() }

// Program is a static instruction sequence for the simulated RISC ISA.
type Program = isa.Program

// Assemble parses assembler text (the paper's listing syntax) into a
// program.
func Assemble(name, text string) (*Program, error) { return isa.Assemble(name, text) }

// Thread is one software thread scheduled onto an SMT context.
type Thread = sim.Thread

// Options tunes a simulation run.
type Options = sim.Options

// Result is one quantum's measurements.
type Result = sim.Result

// ThreadResult is one thread's measurements.
type ThreadResult = sim.ThreadResult

// Simulator couples the SMT core with the power, thermal, and DTM
// models.
type Simulator = sim.Simulator

// NewSimulator builds a simulator; see sim.Options for the policy and
// warmup knobs.
func NewSimulator(cfg Config, threads []Thread, opts Options) (*Simulator, error) {
	return sim.New(cfg, threads, opts)
}

// Policy identifies a dynamic thermal management policy.
type Policy = dtm.Kind

// The available DTM policies.
const (
	PolicyNone              = dtm.None
	PolicyStopAndGo         = dtm.StopAndGo
	PolicyDVS               = dtm.DVS
	PolicySelectiveSedation = dtm.SelectiveSedation
)

// SedationReport is the notification raised to the OS when a thread is
// sedated.
type SedationReport = score.Report

// Unit identifies a pipeline resource / floorplan block.
type Unit = power.Unit

// UnitIntReg is the integer register file, the attack's target.
const UnitIntReg = power.UnitIntReg

// SpecNames lists the built-in SPEC2K-like benchmark names.
func SpecNames() []string { return workload.SpecNames() }

// SpecProgram synthesizes the named benchmark (see internal/workload
// for the profile definitions; the programs are synthetic stand-ins for
// the SPEC2K binaries, DESIGN.md §2).
func SpecProgram(name string, seed int64) (*Program, error) { return workload.Spec(name, seed) }

// Variant builds the paper's malicious variant n (1-3, Figures 1-2)
// with phase durations matching DefaultConfig's thermal scale.
func Variant(n int) (*Program, error) { return workload.Variant(n) }

// VariantForScale builds variant n tuned for a different thermal scale.
func VariantForScale(n int, scale float64) (*Program, error) {
	return workload.VariantForScale(n, scale)
}

// KernelNames lists the built-in microbenchmark kernels (stream,
// pointerchase, fpblast, branchstorm, stores).
func KernelNames() []string { return workload.KernelNames() }

// Kernel builds a named microbenchmark kernel.
func Kernel(name string) (*Program, error) { return workload.Kernel(name) }

// Task is a software thread managed by the OS-scheduler substrate.
type Task = osched.Task

// SchedulerOptions tunes the OS-scheduler substrate.
type SchedulerOptions = osched.Options

// Scheduler time-slices tasks onto the SMT contexts and consumes the
// culprit reports selective sedation raises (Section 3.3).
type Scheduler = osched.Scheduler

// NewScheduler builds the OS-scheduler substrate.
func NewScheduler(cfg Config, tasks []*Task, opts SchedulerOptions) (*Scheduler, error) {
	return osched.New(cfg, tasks, opts)
}

// ExperimentTable is a rendered experiment artifact. It is a
// sweep.Table: Render/String give aligned ASCII, WriteJSON/WriteCSV
// give machine-readable exports, and Summary carries the sweep's
// execution metrics (job counts, wall times, simulated cycles/sec,
// peak temperatures).
type ExperimentTable = experiment.Table

// SweepSummary aggregates a sweep's execution metrics.
type SweepSummary = sweep.Summary

// ExperimentOptions configures the evaluation harness.
type ExperimentOptions = experiment.Options

// ExperimentNames lists the reproducible tables and figures.
func ExperimentNames() []string { return experiment.Names() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(name string, o ExperimentOptions) (*ExperimentTable, error) {
	return experiment.Run(name, o)
}

// RunExperimentContext is RunExperiment with cancellation: cancelling
// the context stops the experiment's sweep (running simulations
// finish, pending ones are skipped, and an error is returned).
func RunExperimentContext(ctx context.Context, name string, o ExperimentOptions) (*ExperimentTable, error) {
	return experiment.RunContext(ctx, name, o)
}

// DeriveSeed deterministically derives a per-job seed from a base seed
// and a job key; sweeps seeded through it are reproducible regardless
// of parallelism.
func DeriveSeed(base int64, key string) int64 { return sweep.DeriveSeed(base, key) }
