// Benchmark harness: one target per table/figure of the paper's
// evaluation plus the DESIGN.md ablations, and microbenchmarks for the
// simulator substrates.
//
// The experiment benches run a reduced configuration by default (two
// benchmarks, short quanta) so `go test -bench=.` finishes in minutes
// on one core; set HEATSTROKE_BENCH_FULL=1 to regenerate the figures at
// full scale (all benchmarks, 8M-cycle quanta — use cmd/heatstroke for
// the rendered tables).
//
// HEATSTROKE_BENCH_CPUPROFILE and HEATSTROKE_BENCH_MEMPROFILE name
// files to receive pprof profiles of the whole benchmark run. They
// exist for wrappers like cmd/heatstroke-bench that invoke `go test`
// on several packages at once, where per-package -cpuprofile flags
// would clobber each other's output paths.
package heatstroke_test

import (
	"context"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	heatstroke "github.com/heatstroke-sim/heatstroke"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
)

func TestMain(m *testing.M) {
	// Not os.Exit(m.Run()) directly: the profile defers must flush
	// before the process exits.
	os.Exit(func() int {
		if path := os.Getenv("HEATSTROKE_BENCH_CPUPROFILE"); path != "" {
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				log.Fatal(err)
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
		if path := os.Getenv("HEATSTROKE_BENCH_MEMPROFILE"); path != "" {
			defer func() {
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					log.Fatal(err)
				}
			}()
		}
		return m.Run()
	}())
}

func benchOptions(b *testing.B) heatstroke.ExperimentOptions {
	b.Helper()
	cfg := heatstroke.DefaultConfig()
	opts := heatstroke.ExperimentOptions{Config: &cfg}
	if os.Getenv("HEATSTROKE_BENCH_FULL") == "1" {
		cfg.Run.QuantumCycles = 8_000_000
		return opts
	}
	cfg.Run.QuantumCycles = 1_000_000
	opts.Benchmarks = []string{"crafty", "mcf"}
	opts.Warmup = 200_000
	return opts
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	opts := benchOptions(b)
	for i := 0; i < b.N; i++ {
		table, err := heatstroke.RunExperiment(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable1Config regenerates Table 1 (system parameters).
func BenchmarkTable1Config(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure3AccessRates regenerates Figure 3 (average integer
// register-file access rates, solo runs).
func BenchmarkFigure3AccessRates(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4Emergencies regenerates Figure 4 (temperature
// emergencies per OS quantum).
func BenchmarkFigure4Emergencies(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5IPC regenerates Figure 5 (SPEC IPC under heat stroke
// and selective sedation, eleven configurations per benchmark).
func BenchmarkFigure5IPC(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6Breakdown regenerates Figure 6 (execution-time
// breakdown).
func BenchmarkFigure6Breakdown(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkHeatSinkSensitivity regenerates the Section 5.5 study
// (convection-resistance sweep).
func BenchmarkHeatSinkSensitivity(b *testing.B) { runExperiment(b, "heatsink") }

// BenchmarkThresholdSensitivity regenerates the Section 5.6 study
// (upper/lower threshold sweep).
func BenchmarkThresholdSensitivity(b *testing.B) { runExperiment(b, "thresholds") }

// BenchmarkSpecPairFalsePositives regenerates the Section 5.7 study
// (SPEC pairs, sedation vs stop-and-go).
func BenchmarkSpecPairFalsePositives(b *testing.B) { runExperiment(b, "specpairs") }

// BenchmarkTimingDutyCycle regenerates the Section 3.1 heat/cool
// timing measurement.
func BenchmarkTimingDutyCycle(b *testing.B) { runExperiment(b, "timing") }

// BenchmarkPolicyComparison regenerates the five-policy DTM comparison.
func BenchmarkPolicyComparison(b *testing.B) { runExperiment(b, "policies") }

// BenchmarkAblationFetchPolicy regenerates the ICOUNT vs round-robin
// fetch ablation.
func BenchmarkAblationFetchPolicy(b *testing.B) { runExperiment(b, "ablation-fetchpolicy") }

// BenchmarkAblationFlatAverage regenerates the weighted-average vs
// flat-count culprit-identification ablation (Section 3.2.1).
func BenchmarkAblationFlatAverage(b *testing.B) { runExperiment(b, "ablation-flatavg") }

// BenchmarkAblationAbsoluteThreshold regenerates the temperature-trigger
// vs absolute-threshold ablation (Section 3.2.1).
func BenchmarkAblationAbsoluteThreshold(b *testing.B) { runExperiment(b, "ablation-absthresh") }

// BenchmarkAblationMultiCulprit regenerates the two-attacker
// re-examination ablation (Section 3.2.2) on a 4-context SMT.
func BenchmarkAblationMultiCulprit(b *testing.B) { runExperiment(b, "ablation-multiculprit") }

// BenchmarkWarmupReuse measures what warmup-snapshot sharing buys: the
// policies experiment runs every DTM policy over the same thread sets,
// so all jobs for one benchmark share a single warm key. The reuse arm
// warms once per key and restores everywhere else; the cold arm
// (DisableWarmupReuse) re-simulates every warmup. Warmup is pinned at
// a third of each job's cycles so the difference is well above noise.
func BenchmarkWarmupReuse(b *testing.B) {
	run := func(disable bool) func(*testing.B) {
		return func(b *testing.B) {
			opts := benchOptions(b)
			opts.Warmup = 500_000
			opts.DisableWarmupReuse = disable
			for i := 0; i < b.N; i++ {
				table, err := heatstroke.RunExperiment("policies", opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(table.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		}
	}
	b.Run("reuse", run(false))
	b.Run("cold", run(true))
}

// BenchmarkForkSweep measures what the fork-tree engine buys over cold
// per-variant runs on the dense threshold grid — the sweep fork trees
// exist to make affordable. The fork arm simulates each thread set's
// warmup prefix once and forks every grid point from the in-memory
// snapshot; the cold arm re-simulates every warmup. With warmup pinned
// equal to the measured quantum, the cold arm does ~1.8x the fork
// arm's simulation work (per benchmark: 15 warmups + 15 quanta vs 2
// warmups + 15 quanta), so the fork arm's wall-clock win is well above
// noise at any parallelism.
func BenchmarkForkSweep(b *testing.B) {
	run := func(fork bool) func(*testing.B) {
		return func(b *testing.B) {
			opts := benchOptions(b)
			opts.Warmup = 500_000
			opts.Quantum = 500_000
			opts.ForkTree = fork
			opts.DisableWarmupReuse = !fork
			for i := 0; i < b.N; i++ {
				table, err := heatstroke.RunExperiment("thresholds-dense", opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(table.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		}
	}
	b.Run("fork", run(true))
	b.Run("cold", run(false))
}

// ---- substrate microbenchmarks ----

// BenchmarkSweepEngine measures the sweep scheduler's per-job overhead
// (feeder, workers, metrics aggregation) with trivial jobs, so the
// orchestration cost stays invisible next to real simulations.
func BenchmarkSweepEngine(b *testing.B) {
	jobs := make([]sweep.Job[int64], 256)
	for i := range jobs {
		key := "job" + string(rune('a'+i%26))
		jobs[i] = sweep.Job[int64]{
			Key: key,
			Run: func(context.Context) (int64, error) {
				return sweep.DeriveSeed(1, key), nil
			},
		}
	}
	opts := sweep.Options[int64]{
		Parallelism: 4,
		Metrics: func(r sweep.JobResult[int64]) map[string]float64 {
			return map[string]float64{"seed": float64(r.Value % 1000)}
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(context.Background(), jobs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableExport measures the JSON and CSV artifact encoders on
// a full-evaluation-sized table.
func BenchmarkTableExport(b *testing.B) {
	tb := &heatstroke.ExperimentTable{
		Title:   "bench",
		Columns: []string{"benchmark", "ipc", "peak", "emergencies"},
	}
	for i := 0; i < 200; i++ {
		tb.Rows = append(tb.Rows, []string{"crafty", "1.93", "358.2", "12"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tb.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := tb.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineCycles measures raw simulation speed: reported as
// ns per simulated cycle of a busy 2-thread pipeline.
func BenchmarkPipelineCycles(b *testing.B) {
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 1 // unused; we drive the core directly
	victim, err := heatstroke.SpecProgram("crafty", 1)
	if err != nil {
		b.Fatal(err)
	}
	attacker, err := heatstroke.Variant(2)
	if err != nil {
		b.Fatal(err)
	}
	s, err := heatstroke.NewSimulator(cfg, []heatstroke.Thread{
		{Name: "crafty", Prog: victim},
		{Name: "variant2", Prog: attacker},
	}, heatstroke.Options{})
	if err != nil {
		b.Fatal(err)
	}
	core := s.Core()
	b.ResetTimer()
	core.Run(int64(b.N))
}

// BenchmarkQuantumSimulation measures one full simulated quantum
// (pipeline + power + thermal + policy) per iteration.
func BenchmarkQuantumSimulation(b *testing.B) {
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 500_000
	prog, err := heatstroke.SpecProgram("gcc", 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, err := heatstroke.NewSimulator(cfg, []heatstroke.Thread{{Name: "gcc", Prog: prog}},
			heatstroke.Options{Policy: heatstroke.PolicyStopAndGo})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures synthetic program synthesis.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := heatstroke.SpecProgram("gcc", int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssembler measures the two-pass assembler on a mid-sized
// listing.
func BenchmarkAssembler(b *testing.B) {
	prog, err := heatstroke.Variant(2)
	if err != nil {
		b.Fatal(err)
	}
	_ = prog
	text := "L$1:\taddl $1, $2, $3\n\tldq $4, 8($2)\n\tstq $4, 16($2)\n\tbeqz $4, L$1\n\tbr L$1\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heatstroke.Assemble("bench", text); err != nil {
			b.Fatal(err)
		}
	}
}
