// Command heatstroke regenerates the paper's tables and figures.
//
// Usage:
//
//	heatstroke -experiment fig5                 # one experiment
//	heatstroke -experiment all                  # the whole evaluation
//	heatstroke -experiment fig4 -bench crafty,mcf -quantum 8000000
//	heatstroke -list                            # list experiments
//
// The -scale flag trades fidelity for speed (DESIGN.md §6): -scale 1
// -quantum 500000000 is the paper's physical time base.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke: ")
	name := flag.String("experiment", "", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list available experiments")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	quantum := flag.Int64("quantum", 0, "cycles per OS quantum (default: config)")
	scale := flag.Float64("scale", 0, "thermal scale factor (default 16; 1 = paper time base)")
	seed := flag.Int64("seed", 0, "workload generation seed")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (default: GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := config.Default()
	if *scale > 0 {
		cfg.Thermal.Scale = *scale
	}
	opts := experiment.Options{
		Config:      &cfg,
		Quantum:     *quantum,
		Seed:        *seed,
		Parallelism: *parallel,
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			opts.Benchmarks = append(opts.Benchmarks, strings.TrimSpace(b))
		}
	}

	names := []string{*name}
	if *name == "all" {
		names = experiment.Names()
	}
	for _, n := range names {
		start := time.Now()
		table, err := experiment.Run(n, opts)
		if err != nil {
			log.Fatal(err)
		}
		table.Render(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", n, time.Since(start).Seconds())
	}
}
