// Command heatstroke regenerates the paper's tables and figures.
//
// Usage:
//
//	heatstroke -experiment fig5                 # one experiment
//	heatstroke -experiment all                  # the whole evaluation
//	heatstroke -experiment fig4 -bench crafty,mcf -quantum 8000000
//	heatstroke -experiment fig5 -format json    # machine-readable artifact
//	heatstroke -experiment thresholds-dense -fork  # fork-tree sweep mode
//	heatstroke -experiment all -format csv -out artifacts/
//	heatstroke -experiment fig3 -server http://localhost:8080
//	heatstroke -list                            # list experiments
//	heatstroke -events-out trace.ndjson -snapshot-out warm.snap
//	heatstroke -events-out t2.ndjson -policy dvs -snapshot-in warm.snap
//
// Tables render as ASCII by default; -format json/csv emits structured
// artifacts (JSON includes the sweep's execution summary — job counts,
// wall times, simulated cycles/sec, peak temperatures). With -out the
// artifacts are written to files (a directory when running several
// experiments); without it they go to stdout. Progress and timing are
// printed to stderr so stdout stays parseable. Interrupting the run
// (SIGINT/SIGTERM) cancels the sweep: running simulations finish,
// pending ones are skipped. -timeout bounds the whole invocation.
//
// With -server the experiment is not simulated locally: the request is
// submitted to a heatstroked daemon (cmd/heatstroked), which coalesces
// identical requests and serves repeats from its content-addressed
// cache. Progress streams back live, and the artifact is fetched in
// the requested format, so the flag composes with -format/-out exactly
// like a local run.
//
// The -scale flag trades fidelity for speed (DESIGN.md §6): -scale 1
// -quantum 500000000 is the paper's physical time base.
//
// -cpuprofile and -memprofile write pprof profiles of the run (local
// simulation only — profiling a -server run profiles just the client),
// for chasing simulator hot spots alongside the committed benchmark
// baseline (see DESIGN.md "Performance").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/experiment"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke: ")
	os.Exit(run())
}

// run holds main's body so profile-writing defers fire before exit.
func run() int {
	name := flag.String("experiment", "", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list available experiments")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	quantum := flag.Int64("quantum", 0, "cycles per OS quantum (default: config)")
	warmup := flag.Int64("warmup", 0, "unmeasured warmup cycles (default 500000)")
	scale := flag.Float64("scale", 0, "thermal scale factor (default 16; 1 = paper time base)")
	cores := flag.Int("cores", 0, "die core count (default: 1, or 2 for multi-core experiments)")
	solver := flag.String("solver", "", "thermal solver: lumped or grid (default: lumped, grid when -cores > 1)")
	seed := flag.Int64("seed", 0, "workload generation seed (default: config)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (default: GOMAXPROCS)")
	fork := flag.Bool("fork", false, "fork-tree mode: simulate shared warmup prefixes once and fork variants from in-memory snapshots (byte-identical tables)")
	format := flag.String("format", "table", "artifact format: table, json, or csv")
	out := flag.String("out", "", "write artifacts to this file (one experiment) or directory (default: stdout)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	serverURL := flag.String("server", "", "run via a heatstroked daemon at this URL instead of locally")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	eventsOut := flag.String("events-out", "", "trace mode: write the DTM event timeline as NDJSON to this file")
	perfettoOut := flag.String("perfetto-out", "", "trace mode: write a Chrome/Perfetto trace-event JSON to this file")
	variant := flag.Int("variant", 2, "trace mode: malicious variant 1-3 (0 for none)")
	policy := flag.String("policy", "sedation", "trace mode: DTM policy: none|stopgo|dvs|ttdfs|sedation")
	snapshotOut := flag.String("snapshot-out", "", "trace mode: write the post-warmup machine state to this file, then run")
	snapshotIn := flag.String("snapshot-in", "", "trace mode: restore the machine state from this file instead of warming up")
	flag.Parse()

	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return 0
	}
	if *eventsOut != "" || *perfettoOut != "" || *snapshotOut != "" || *snapshotIn != "" {
		if *name != "" {
			log.Print("trace-mode flags run a single scenario and cannot combine with -experiment")
			return 2
		}
		if *snapshotOut != "" && *snapshotIn != "" {
			log.Print("-snapshot-out and -snapshot-in are mutually exclusive")
			return 2
		}
		if err := runTrace(*benches, *variant, *policy, *quantum, *warmup, *scale, *eventsOut, *perfettoOut, *snapshotOut, *snapshotIn); err != nil {
			log.Print(err)
			return 1
		}
		return 0
	}
	if *name == "" {
		flag.Usage()
		return 2
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Print(err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				log.Print(err)
			}
		}()
	}
	f, err := sweep.ParseFormat(*format)
	if err != nil {
		log.Print(err)
		return 1
	}

	// A literal -seed 0 must mean "seed zero", not "use the default";
	// flag.Visit distinguishes the two.
	seedSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "seed" {
			seedSet = true
		}
	})

	var benchList []string
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			benchList = append(benchList, strings.TrimSpace(b))
		}
	}

	names := []string{*name}
	if *name == "all" {
		names = experiment.Names()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serverURL != "" {
		c := client.New(*serverURL)
		for _, n := range names {
			req := api.JobRequest{
				Experiment: n,
				Benchmarks: benchList,
				Quantum:    *quantum,
				Warmup:     *warmup,
				Scale:      *scale,
				Cores:      *cores,
				Solver:     *solver,
			}
			if seedSet {
				s := *seed
				req.Seed = &s
			}
			if err := runRemote(ctx, c, req, f, *format, *out, len(names) > 1); err != nil {
				log.Print(err)
				return 1
			}
		}
		return 0
	}

	cfg := config.Default()
	if *scale > 0 {
		cfg.Thermal.Scale = *scale
	}
	if *cores > 0 {
		cfg.Topology.Cores = *cores
		if *cores > 1 && *solver == "" {
			cfg.Topology.Solver = config.SolverGrid
		}
	}
	if *solver != "" {
		cfg.Topology.Solver = *solver
	}
	if err := cfg.Validate(); err != nil {
		log.Print(err)
		return 2
	}
	opts := experiment.Options{
		Config:      &cfg,
		Quantum:     *quantum,
		Warmup:      *warmup,
		Seed:        *seed,
		SeedSet:     seedSet,
		Parallelism: *parallel,
		Benchmarks:  benchList,
		ForkTree:    *fork,
	}

	for _, n := range names {
		start := time.Now()
		table, err := experiment.RunContext(ctx, n, opts)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := emit(table.Writer(f), n, f, *out, len(names) > 1); err != nil {
			log.Print(err)
			return 1
		}
		status := fmt.Sprintf("%s in %.1fs", n, time.Since(start).Seconds())
		if table.Summary != nil {
			status += ": " + table.Summary.String()
		}
		fmt.Fprintf(os.Stderr, "  (%s)\n", status)
	}
	return 0
}

// runTrace is the single-scenario trace mode behind -events-out,
// -perfetto-out, and the snapshot flags: one attack-pair simulation
// (victim benchmark plus a malicious variant) under the chosen DTM
// policy, exported as a typed event timeline (NDJSON) and/or a
// Perfetto trace with one track per thread over the per-unit
// temperature counters. -snapshot-out captures the post-warmup machine
// state to a file before measuring (the run itself is unchanged);
// -snapshot-in restores such a file in place of warming up, which is
// provably equivalent to a cold run and works under any -policy
// because warmup never ticks the DTM.
func runTrace(benches string, variant int, policy string, quantum, warmup int64, scale float64, eventsOut, perfettoOut, snapshotOut, snapshotIn string) error {
	cfg := config.Default()
	if scale > 0 {
		cfg.Thermal.Scale = scale
	}
	if quantum > 0 {
		cfg.Run.QuantumCycles = quantum
	} else {
		cfg.Run.QuantumCycles = 12_000_000
	}
	if warmup <= 0 {
		warmup = 500_000
	}

	victim := "crafty"
	if benches != "" {
		victim = strings.TrimSpace(strings.Split(benches, ",")[0])
	}
	var threads []sim.Thread
	if victim != "" && victim != "none" {
		prog, err := workload.Spec(victim, cfg.Run.Seed)
		if err != nil {
			return err
		}
		threads = append(threads, sim.Thread{Name: victim, Prog: prog})
	}
	if variant > 0 {
		prog, err := workload.VariantForScale(variant, cfg.Thermal.Scale)
		if err != nil {
			return err
		}
		threads = append(threads, sim.Thread{Name: fmt.Sprintf("variant%d", variant), Prog: prog})
	}
	if len(threads) == 0 {
		return fmt.Errorf("nothing to run: set -bench and/or -variant")
	}

	rec := &trace.Recorder{}
	s, err := sim.New(cfg, threads, sim.Options{
		Policy:        dtm.Kind(policy),
		WarmupCycles:  warmup,
		Recorder:      rec,
		CollectEvents: true,
	})
	if err != nil {
		return err
	}
	if snapshotIn != "" {
		ms, err := sim.ReadStateFile(snapshotIn)
		if err != nil {
			return err
		}
		if err := s.Restore(ms); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  restored %s\n", snapshotIn)
	}
	if snapshotOut != "" {
		ms, err := s.WarmupSnapshot()
		if err != nil {
			return err
		}
		if err := sim.WriteStateFile(snapshotOut, ms); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  wrote %s\n", snapshotOut)
	}
	start := time.Now()
	res, err := s.Run()
	if err != nil {
		return err
	}

	emitFile := func(path string, fill func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
		return nil
	}
	if eventsOut != "" {
		if err := emitFile(eventsOut, func(w io.Writer) error {
			return telemetry.WriteNDJSON(w, res.Events)
		}); err != nil {
			return err
		}
	}
	if perfettoOut != "" {
		names := make([]string, len(threads))
		for i, th := range threads {
			names[i] = th.Name
		}
		if err := emitFile(perfettoOut, func(w io.Writer) error {
			return telemetry.WritePerfetto(w, telemetry.TraceOptions{
				FrequencyHz: cfg.Power.FrequencyHz,
				ThreadNames: names,
				Events:      res.Events,
				Samples:     rec.Samples,
			})
		}); err != nil {
			return err
		}
	}
	sum := rec.Summarize()
	fmt.Fprintf(os.Stderr, "  (%s vs %s under %s: %d cycles in %.1fs, peak %.2f K @ %s, %d events)\n",
		threads[0].Name, threads[len(threads)-1].Name, policy, res.Cycles, time.Since(start).Seconds(),
		sum.PeakTempK, sum.PeakUnit, len(res.Events))
	return nil
}

// runRemote submits one experiment to a heatstroked daemon, streams
// its progress to stderr, and emits the fetched artifact through the
// same stdout/file path logic as a local run.
func runRemote(ctx context.Context, c *client.Client, req api.JobRequest, f sweep.Format, format, out string, multi bool) error {
	start := time.Now()
	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	switch {
	case st.Cached:
		fmt.Fprintf(os.Stderr, "  %s: cache hit (job %s)\n", req.Experiment, st.ID)
	case st.Coalesced:
		fmt.Fprintf(os.Stderr, "  %s: joined in-flight job %s\n", req.Experiment, st.ID)
	default:
		fmt.Fprintf(os.Stderr, "  %s: submitted job %s\n", req.Experiment, st.ID)
	}
	if st.TraceID != "" {
		fmt.Fprintf(os.Stderr, "  %s: trace %s (GET /v1/traces/%s)\n", req.Experiment, st.TraceID, st.TraceID)
	}
	final, err := c.Wait(ctx, st.ID, func(p api.Progress) {
		if p.Total > 0 {
			fmt.Fprintf(os.Stderr, "\r  %s: %d/%d simulations", req.Experiment, p.Completed, p.Total)
		}
	})
	if final != nil && final.Progress.Total > 0 {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if final.Status != api.StatusDone {
		if final.Error != "" {
			return fmt.Errorf("job %s %s: %s", final.ID, final.Status, final.Error)
		}
		return fmt.Errorf("job %s ended %s", final.ID, final.Status)
	}
	raw, err := c.Artifact(ctx, final.ID, format)
	if err != nil {
		return err
	}
	write := func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}
	if err := emit(write, req.Experiment, f, out, multi); err != nil {
		return err
	}
	status := fmt.Sprintf("%s in %.1fs", req.Experiment, time.Since(start).Seconds())
	if final.Summary != nil {
		status += ": " + final.Summary.String()
	}
	fmt.Fprintf(os.Stderr, "  (%s)\n", status)
	return nil
}

// emit writes one artifact produced by write. An empty path means
// stdout; otherwise the path is a file for a single experiment, or a
// directory (created if missing) holding <experiment>.<ext> when
// several run.
func emit(write func(io.Writer) error, name string, f sweep.Format, path string, multi bool) error {
	if path == "" {
		if err := write(os.Stdout); err != nil {
			return err
		}
		if f == sweep.FormatTable {
			fmt.Println()
		}
		return nil
	}
	if multi || strings.HasSuffix(path, string(os.PathSeparator)) || isDir(path) {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return err
		}
		path = filepath.Join(path, name+"."+f.Ext())
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(file); err != nil {
		file.Close()
		return err
	}
	if err := file.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
	return nil
}

func isDir(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}
