// Command heatstroke regenerates the paper's tables and figures.
//
// Usage:
//
//	heatstroke -experiment fig5                 # one experiment
//	heatstroke -experiment all                  # the whole evaluation
//	heatstroke -experiment fig4 -bench crafty,mcf -quantum 8000000
//	heatstroke -experiment fig5 -format json    # machine-readable artifact
//	heatstroke -experiment all -format csv -out artifacts/
//	heatstroke -list                            # list experiments
//
// Tables render as ASCII by default; -format json/csv emits structured
// artifacts (JSON includes the sweep's execution summary — job counts,
// wall times, simulated cycles/sec, peak temperatures). With -out the
// artifacts are written to files (a directory when running several
// experiments); without it they go to stdout. Progress and timing are
// printed to stderr so stdout stays parseable. Interrupting the run
// (SIGINT/SIGTERM) cancels the sweep: running simulations finish,
// pending ones are skipped.
//
// The -scale flag trades fidelity for speed (DESIGN.md §6): -scale 1
// -quantum 500000000 is the paper's physical time base.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/experiment"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke: ")
	name := flag.String("experiment", "", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list available experiments")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	quantum := flag.Int64("quantum", 0, "cycles per OS quantum (default: config)")
	scale := flag.Float64("scale", 0, "thermal scale factor (default 16; 1 = paper time base)")
	seed := flag.Int64("seed", 0, "workload generation seed (0 = config default)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (default: GOMAXPROCS)")
	format := flag.String("format", "table", "artifact format: table, json, or csv")
	out := flag.String("out", "", "write artifacts to this file (one experiment) or directory (default: stdout)")
	flag.Parse()

	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := sweep.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}

	cfg := config.Default()
	if *scale > 0 {
		cfg.Thermal.Scale = *scale
	}
	opts := experiment.Options{
		Config:      &cfg,
		Quantum:     *quantum,
		Seed:        *seed,
		Parallelism: *parallel,
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			opts.Benchmarks = append(opts.Benchmarks, strings.TrimSpace(b))
		}
	}

	names := []string{*name}
	if *name == "all" {
		names = experiment.Names()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, n := range names {
		start := time.Now()
		table, err := experiment.RunContext(ctx, n, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := emit(table, n, f, *out, len(names) > 1); err != nil {
			log.Fatal(err)
		}
		status := fmt.Sprintf("%s in %.1fs", n, time.Since(start).Seconds())
		if table.Summary != nil {
			status += ": " + table.Summary.String()
		}
		fmt.Fprintf(os.Stderr, "  (%s)\n", status)
	}
}

// emit writes one artifact. An empty path means stdout; otherwise the
// path is a file for a single experiment, or a directory (created if
// missing) holding <experiment>.<ext> when several run.
func emit(t *sweep.Table, name string, f sweep.Format, path string, multi bool) error {
	if path == "" {
		if err := t.Write(os.Stdout, f); err != nil {
			return err
		}
		if f == sweep.FormatTable {
			fmt.Println()
		}
		return nil
	}
	if multi || strings.HasSuffix(path, string(os.PathSeparator)) || isDir(path) {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return err
		}
		path = filepath.Join(path, name+"."+f.Ext())
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(file, f); err != nil {
		file.Close()
		return err
	}
	if err := file.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
	return nil
}

func isDir(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}
