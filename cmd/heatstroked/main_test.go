package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

// TestRunDrainsOnSIGTERM exercises the full daemon lifecycle
// in-process: start, submit a job big enough to still be in flight,
// deliver SIGTERM to ourselves, and require run to drain and return
// nil — the "exits 0" acceptance criterion.
func TestRunDrainsOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	cacheDir := t.TempDir()
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-cache-dir", cacheDir,
			"-max-concurrent", "1",
			"-parallel", "1",
			"-drain-timeout", "2m",
		}, func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start listening")
	}

	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthy: %v", err)
	}

	// A full fig3 run (all benchmarks, default quantum) takes far
	// longer than this test waits, so the sweep is mid-flight when the
	// signal lands.
	seed := int64(7)
	st, err := c.Submit(ctx, api.JobRequest{
		Experiment: "fig3",
		Quantum:    150_000,
		Warmup:     1_000,
		Seed:       &seed,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for {
		got, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatalf("job: %v", err)
		}
		if got.Status == api.StatusRunning && got.Progress.Completed >= 1 {
			break
		}
		if got.Status.Terminal() {
			t.Fatalf("job finished before signal: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("run did not return after SIGTERM")
	}
}
