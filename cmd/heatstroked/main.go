// Command heatstroked is the experiment-serving daemon: a long-lived
// HTTP service that runs the paper's experiments on demand and serves
// repeated requests from a content-addressed result cache.
//
// Usage:
//
//	heatstroked                                  # serve on :8080
//	heatstroked -addr :9090 -cache-dir /var/cache/heatstroke
//	heatstroked -max-concurrent 4 -max-queue 64 -job-timeout 10m
//
// API (see pkg/api and pkg/client):
//
//	POST /v1/jobs                submit {"experiment": "fig5", ...}
//	GET  /v1/jobs/{id}           status + execution summary
//	GET  /v1/jobs/{id}/artifact  rendered table (?format=table|json|csv)
//	GET  /v1/jobs/{id}/events    SSE progress stream
//	GET  /v1/experiments         registry listing
//	GET  /v1/traces/{id}         spans of one trace (trace id or job id)
//	GET  /v1/stats               serving counters
//	GET  /metrics                Prometheus text-format exposition
//	GET  /healthz, /readyz       probes
//
// Identical requests share one simulation: concurrent duplicates
// coalesce onto the in-flight run, and completed results are cached
// (persistently with -cache-dir, so restarts don't re-simulate).
// SIGINT/SIGTERM drain gracefully: in-flight sweeps are cancelled,
// running simulations finish, and partial summaries are persisted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroked: ")
	if err := run(os.Args[1:], nil); err != nil {
		log.Fatal(err)
	}
}

// run is the daemon lifecycle, factored out of main so tests can drive
// it in-process. ready, when non-nil, receives the bound address once
// the listener is up. It returns nil on a clean signal-driven drain.
func run(args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("heatstroked", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheDir := fs.String("cache-dir", "", "persist completed results to this directory")
	warmupCacheDir := fs.String("warmup-cache-dir", "", "persist warmup snapshots to this directory (skips warmup for repeated configurations)")
	advertise := fs.String("advertise", "", "address fleet peers should reach this daemon at (reported in /v1/stats)")
	fleetToken := fs.String("fleet-token", "", "bearer token gating the /v1/warm snapshot-transfer endpoints (empty = open)")
	maxConcurrent := fs.Int("max-concurrent", 2, "maximum sweeps running at once")
	maxQueue := fs.Int("max-queue", 16, "maximum queued jobs before 429 backpressure")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	parallel := fs.Int("parallel", 0, "per-sweep worker bound (default: GOMAXPROCS)")
	fork := fs.Bool("fork", false, "fork-tree sweep mode: simulate shared warmup prefixes once per sweep and fork variants from in-memory snapshots")
	scale := fs.Float64("scale", 0, "base thermal scale factor (default: config's)")
	quantum := fs.Int64("quantum", 0, "base cycles per OS quantum (default: config's)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "shutdown drain deadline")
	logJSON := fs.Bool("log-json", false, "emit structured JSON logs instead of text")
	logLevel := fs.String("log-level", "info", "log level: debug (includes per-request lines), info, warn, error")
	traceBuf := fs.Int("trace-buf", 0, "span capacity of the trace flight-recorder ring buffer (0 = default 8192, negative = disable tracing)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	handlerOpts := &slog.HandlerOptions{Level: level}
	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, handlerOpts))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, handlerOpts))
	}

	baseConfig := func() config.Config {
		cfg := config.Default()
		if *scale > 0 {
			cfg.Thermal.Scale = *scale
		}
		if *quantum > 0 {
			cfg.Run.QuantumCycles = *quantum
		}
		return cfg
	}
	srv, err := server.New(server.Options{
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		JobTimeout:     *jobTimeout,
		Parallelism:    *parallel,
		ForkTree:       *fork,
		CacheDir:       *cacheDir,
		WarmupCacheDir: *warmupCacheDir,
		Advertise:      *advertise,
		FleetToken:     *fleetToken,
		BaseConfig:     baseConfig,
		Logger:         logger,
		TraceCapacity:  max(*traceBuf, 0),
		DisableTracing: *traceBuf < 0,
	})
	if err != nil {
		return err
	}

	if *pprofAddr != "" {
		// The profiling mux is opt-in and on its own listener, so the
		// public API surface never exposes pprof.
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		log.Printf("pprof listening on %s", debugLn.Addr())
		go func() {
			if err := http.Serve(debugLn, debugMux); err != nil {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("listening on %s", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	log.Printf("signal received, draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then cancel in-flight sweeps
	// and wait for them; both honour the drain deadline.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	log.Printf("drained cleanly")
	return nil
}
