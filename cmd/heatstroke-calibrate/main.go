// Command heatstroke-calibrate probes the simulator's operating points:
// it runs benchmarks and attack variants solo and paired, printing IPC,
// integer-register-file access rates, peak temperatures, and emergency
// counts. Use it to check the power/thermal calibration targets
// documented in package power before trusting experiment output.
//
// Usage:
//
//	heatstroke-calibrate [-cycles N] [-scale S] [-bench list] [-pairs]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke-calibrate: ")
	cycles := flag.Int64("cycles", 4_000_000, "cycles per run")
	scale := flag.Float64("scale", 16, "thermal scale factor")
	benches := flag.String("bench", "crafty,mcf,gcc,applu", "comma-separated benchmarks")
	pairs := flag.Bool("pairs", false, "also run benchmark+variant pairs")
	pairVariant := flag.Int("variant", 2, "malicious variant used by -pairs")
	policy := flag.String("policy", "stopgo", "DTM policy: none|stopgo|dvs|sedation")
	warmup := flag.Int64("warmup", 500_000, "warmup cycles before measurement")
	noFlaky := flag.Bool("noflaky", false, "zero FlakyFrac in profiles (diagnostic)")
	noMem := flag.Bool("nomem", false, "zero warm/cold memory fractions (diagnostic)")
	ambient := flag.Float64("ambient", 0, "override ambient temperature (K)")
	spsink := flag.Float64("spsink", 0, "override spreader-to-sink K factor")
	diecap := flag.Float64("diecap", 0, "override die capacitance factor")
	spcap := flag.Float64("spcap", 0, "override spreader capacitance factor")
	escale := flag.Float64("escale", 0, "override the global per-access energy scale")
	specPairs := flag.Bool("specpairs", false, "run SPEC+SPEC pairs (first benchmark with each other)")
	flag.Parse()

	cfg := config.Default()
	cfg.Thermal.Scale = *scale
	cfg.Run.QuantumCycles = *cycles
	if *ambient > 0 {
		cfg.Thermal.AmbientK = *ambient
	}
	if *spsink > 0 {
		cfg.Thermal.SpreadToSinkK = *spsink
	}
	if *diecap > 0 {
		cfg.Thermal.DieCapFactor = *diecap
	}
	if *spcap > 0 {
		cfg.Thermal.SpreaderCapFactor = *spcap
	}
	if *escale > 0 {
		cfg.Power.EnergyScale = *escale
	}

	names := strings.Split(*benches, ",")
	fmt.Printf("%-22s %7s %7s %7s %8s %8s %6s %8s %8s\n",
		"workload", "IPC", "RF/cyc", "IQ/cyc", "peakK", "peakUnit", "emerg", "stopgo%", "powerW")

	run := func(label string, threads []sim.Thread) {
		s, err := sim.New(cfg, threads, sim.Options{Policy: dtm.Kind(*policy), WarmupCycles: *warmup})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		for i, tr := range res.Threads {
			iq := float64(s.Core().Activity().Thread(i, power.UnitIntQ)) / float64(res.Cycles)
			peak := ""
			emerg := ""
			stop := ""
			pw := ""
			if i == 0 {
				peak = fmt.Sprintf("%8.2f", res.PeakTemp)
				emerg = fmt.Sprintf("%6d", res.Emergencies)
				stop = fmt.Sprintf("%7.1f%%", 100*float64(res.StopGoCycles)/float64(res.Cycles))
				pw = fmt.Sprintf("%8.1f", res.TotalPowerW)
			}
			mp := 0.0
			if tr.Mispredicts > 0 {
				st := s.Core().Stats(i)
				if st.Branches > 0 {
					mp = 100 * float64(st.Mispredicts) / float64(st.Branches)
				}
			}
			fmt.Printf("%-22s %7.3f %7.2f %7.2f %s %8s %s %s %s mp%%=%.1f\n",
				label+"/"+tr.Name, tr.IPC, tr.IntRegRate, iq, peak, res.PeakUnit, emerg, stop, pw, mp)
		}
		fmt.Printf("%-22s final IntReg=%.2fK IntExec=%.2fK IntQ=%.2fK sink=%.2fK sedations=%d\n",
			label, res.FinalTemps[power.UnitIntReg], res.FinalTemps[power.UnitIntExec],
			res.FinalTemps[power.UnitIntQ], s.Network().SinkTemp(), res.Sedation.Sedations)
	}

	mkVariant := func(n int) *isa.Program {
		p, err := workload.Variant(n)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	mkSpec := func(n string) *isa.Program {
		p, err := workload.SpecProfile(n)
		if err != nil {
			log.Fatal(err)
		}
		if *noFlaky {
			p.FlakyFrac = 0
		}
		if *noMem {
			p.WarmFrac, p.ColdFrac = 0, 0
		}
		prog, _, err := workload.Generate(p, cfg.Run.Seed)
		if err != nil {
			log.Fatal(err)
		}
		return prog
	}

	for _, n := range names {
		n = strings.TrimSpace(n)
		run("solo", []sim.Thread{{Name: n, Prog: mkSpec(n)}})
	}
	for v := 1; v <= 3; v++ {
		run("solo", []sim.Thread{{Name: fmt.Sprintf("variant%d", v), Prog: mkVariant(v)}})
	}
	if *pairs {
		for _, n := range names {
			n = strings.TrimSpace(n)
			run("pair", []sim.Thread{{Name: n, Prog: mkSpec(n)}, {Name: fmt.Sprintf("variant%d", *pairVariant), Prog: mkVariant(*pairVariant)}})
		}
	}
	if *specPairs {
		first := strings.TrimSpace(names[0])
		for _, n := range names[1:] {
			n = strings.TrimSpace(n)
			run("specpair", []sim.Thread{{Name: first, Prog: mkSpec(first)}, {Name: n, Prog: mkSpec(n)}})
		}
	}
}
