// Command heatstroke-calibrate probes the simulator's operating points:
// it runs benchmarks and attack variants solo and paired, printing IPC,
// integer-register-file access rates, peak temperatures, and emergency
// counts. Use it to check the power/thermal calibration targets
// documented in package power before trusting experiment output.
//
// Runs execute through the internal/sweep engine: -parallel bounds
// concurrent simulations, Ctrl-C lets running probes finish and skips
// pending ones, and output is always printed in probe order regardless
// of completion order.
//
// Usage:
//
//	heatstroke-calibrate [-cycles N] [-scale S] [-bench list] [-pairs] [-parallel N] [-timeout D]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke-calibrate: ")
	cycles := flag.Int64("cycles", 4_000_000, "cycles per run")
	scale := flag.Float64("scale", 16, "thermal scale factor")
	benches := flag.String("bench", "crafty,mcf,gcc,applu", "comma-separated benchmarks")
	pairs := flag.Bool("pairs", false, "also run benchmark+variant pairs")
	pairVariant := flag.Int("variant", 2, "malicious variant used by -pairs")
	policy := flag.String("policy", "stopgo", "DTM policy: none|stopgo|dvs|sedation")
	warmup := flag.Int64("warmup", 500_000, "warmup cycles before measurement")
	noFlaky := flag.Bool("noflaky", false, "zero FlakyFrac in profiles (diagnostic)")
	noMem := flag.Bool("nomem", false, "zero warm/cold memory fractions (diagnostic)")
	ambient := flag.Float64("ambient", 0, "override ambient temperature (K)")
	spsink := flag.Float64("spsink", 0, "override spreader-to-sink K factor")
	diecap := flag.Float64("diecap", 0, "override die capacitance factor")
	spcap := flag.Float64("spcap", 0, "override spreader capacitance factor")
	escale := flag.Float64("escale", 0, "override the global per-access energy scale")
	specPairs := flag.Bool("specpairs", false, "run SPEC+SPEC pairs (first benchmark with each other)")
	parallel := flag.Int("parallel", 1, "concurrent probe simulations")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	flag.Parse()

	cfg := config.Default()
	cfg.Thermal.Scale = *scale
	cfg.Run.QuantumCycles = *cycles
	if *ambient > 0 {
		cfg.Thermal.AmbientK = *ambient
	}
	if *spsink > 0 {
		cfg.Thermal.SpreadToSinkK = *spsink
	}
	if *diecap > 0 {
		cfg.Thermal.DieCapFactor = *diecap
	}
	if *spcap > 0 {
		cfg.Thermal.SpreaderCapFactor = *spcap
	}
	if *escale > 0 {
		cfg.Power.EnergyScale = *escale
	}

	mkVariant := func(n int) *isa.Program {
		p, err := workload.Variant(n)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	mkSpec := func(n string) *isa.Program {
		p, err := workload.SpecProfile(n)
		if err != nil {
			log.Fatal(err)
		}
		if *noFlaky {
			p.FlakyFrac = 0
		}
		if *noMem {
			p.WarmFrac, p.ColdFrac = 0, 0
		}
		prog, _, err := workload.Generate(p, cfg.Run.Seed)
		if err != nil {
			log.Fatal(err)
		}
		return prog
	}

	// probe runs one simulation and formats its report; the sweep engine
	// may execute probes concurrently, but output stays in probe order.
	probe := func(label string, threads []sim.Thread) func(context.Context) (string, error) {
		return func(context.Context) (string, error) {
			s, err := sim.New(cfg, threads, sim.Options{Policy: dtm.Kind(*policy), WarmupCycles: *warmup})
			if err != nil {
				return "", err
			}
			res, err := s.Run()
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for i, tr := range res.Threads {
				iq := float64(s.Core().Activity().Thread(i, power.UnitIntQ)) / float64(res.Cycles)
				peak := ""
				emerg := ""
				stop := ""
				pw := ""
				if i == 0 {
					peak = fmt.Sprintf("%8.2f", res.PeakTemp)
					emerg = fmt.Sprintf("%6d", res.Emergencies)
					stop = fmt.Sprintf("%7.1f%%", 100*float64(res.StopGoCycles)/float64(res.Cycles))
					pw = fmt.Sprintf("%8.1f", res.TotalPowerW)
				}
				mp := 0.0
				if tr.Mispredicts > 0 {
					st := s.Core().Stats(i)
					if st.Branches > 0 {
						mp = 100 * float64(st.Mispredicts) / float64(st.Branches)
					}
				}
				fmt.Fprintf(&b, "%-22s %7.3f %7.2f %7.2f %s %8s %s %s %s mp%%=%.1f\n",
					label+"/"+tr.Name, tr.IPC, tr.IntRegRate, iq, peak, res.PeakUnit, emerg, stop, pw, mp)
			}
			fmt.Fprintf(&b, "%-22s final IntReg=%.2fK IntExec=%.2fK IntQ=%.2fK sink=%.2fK sedations=%d\n",
				label, res.FinalTemps[power.UnitIntReg], res.FinalTemps[power.UnitIntExec],
				res.FinalTemps[power.UnitIntQ], s.Network().SinkTemp(), res.Sedation.Sedations)
			return b.String(), nil
		}
	}

	var jobs []sweep.Job[string]
	add := func(label string, threads []sim.Thread) {
		jobs = append(jobs, sweep.Job[string]{Key: label, Run: probe(label, threads)})
	}

	names := strings.Split(*benches, ",")
	for _, n := range names {
		n = strings.TrimSpace(n)
		add("solo/"+n, []sim.Thread{{Name: n, Prog: mkSpec(n)}})
	}
	for v := 1; v <= 3; v++ {
		add(fmt.Sprintf("solo/variant%d", v),
			[]sim.Thread{{Name: fmt.Sprintf("variant%d", v), Prog: mkVariant(v)}})
	}
	if *pairs {
		for _, n := range names {
			n = strings.TrimSpace(n)
			add("pair/"+n, []sim.Thread{
				{Name: n, Prog: mkSpec(n)},
				{Name: fmt.Sprintf("variant%d", *pairVariant), Prog: mkVariant(*pairVariant)},
			})
		}
	}
	if *specPairs {
		first := strings.TrimSpace(names[0])
		for _, n := range names[1:] {
			n = strings.TrimSpace(n)
			add("specpair/"+n, []sim.Thread{
				{Name: first, Prog: mkSpec(first)},
				{Name: n, Prog: mkSpec(n)},
			})
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Printf("%-22s %7s %7s %7s %8s %8s %6s %8s %8s\n",
		"workload", "IPC", "RF/cyc", "IQ/cyc", "peakK", "peakUnit", "emerg", "stopgo%", "powerW")

	res, err := sweep.Run(ctx, jobs, sweep.Options[string]{
		Parallelism: *parallel,
		Policy:      sweep.FailFast,
	})
	// Completed probes print in probe order even on error/cancellation.
	for _, j := range res.Jobs {
		if j.Err == nil && !j.Skipped {
			fmt.Print(j.Value)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}
