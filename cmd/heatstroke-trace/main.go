// Command heatstroke-trace runs one attack scenario and exports the
// full-system time series (per-unit die temperatures, chip power, stall
// state, per-thread IPC, sedation state) as CSV for plotting.
//
// Usage:
//
//	heatstroke-trace -bench crafty -variant 2 -policy stopgo > run.csv
//	heatstroke-trace -bench gcc -variant 1 -policy sedation -cycles 16000000 -o trace.csv
//	heatstroke-trace -policy sedation -events-out run.ndjson -perfetto-out run.json -o run.csv
//
// Alongside the CSV, -events-out writes the typed DTM event timeline
// (threshold crossings, sedations with the culprit thread and EWMA
// score, stop-and-go engage/release, OS reports) as NDJSON, and
// -perfetto-out writes the same run as Chrome/Perfetto trace-event
// JSON — open it in ui.perfetto.dev to see sedation slices per thread
// over the per-unit temperature counters.
//
// A second mode, -stitch, merges distributed-tracing span files (the
// NDJSON a fleet coordinator's -trace-dir writes, or per-node dumps of
// GET /v1/traces/{id}) into one Perfetto trace-event JSON:
//
//	heatstroke-trace -stitch fleet.json coord.ndjson worker1.ndjson worker2.ndjson
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	heatstroke "github.com/heatstroke-sim/heatstroke"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// stitch merges per-node span NDJSON files into one Perfetto JSON at
// outPath: spans are deduplicated by (trace id, span id) — the same
// span fetched via two nodes collapses to one — and sorted by start
// time, so the output is deterministic for a given input set.
func stitch(outPath string, inputs []string) error {
	if len(inputs) == 0 {
		return fmt.Errorf("-stitch needs at least one span NDJSON file argument")
	}
	groups := make([][]tracing.Span, 0, len(inputs))
	for _, in := range inputs {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		spans, err := tracing.ReadNDJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", in, err)
		}
		groups = append(groups, spans)
	}
	merged := tracing.Stitch(groups...)
	if err := writeFile(outPath, func(w *os.File) error {
		return tracing.WritePerfetto(w, merged)
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stitched %d spans from %d files\n", len(merged), len(inputs))
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke-trace: ")
	bench := flag.String("bench", "crafty", "victim benchmark (empty for none)")
	variant := flag.Int("variant", 2, "malicious variant 1-3 (0 for none)")
	policy := flag.String("policy", "stopgo", "DTM policy: none|stopgo|dvs|ttdfs|sedation")
	cycles := flag.Int64("cycles", 12_000_000, "cycles to simulate")
	warmup := flag.Int64("warmup", 500_000, "warmup cycles before tracing")
	stride := flag.Int("stride", 1, "keep every n-th sensor sample")
	out := flag.String("o", "", "output file (default stdout)")
	eventsOut := flag.String("events-out", "", "write the DTM event timeline as NDJSON to this file")
	perfettoOut := flag.String("perfetto-out", "", "write a Chrome/Perfetto trace-event JSON to this file")
	stitchOut := flag.String("stitch", "", "stitch mode: merge the span NDJSON files given as arguments into one Perfetto JSON at this path, then exit")
	flag.Parse()

	if *stitchOut != "" {
		if err := stitch(*stitchOut, flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = *cycles

	var threads []sim.Thread
	if *bench != "" {
		prog, err := workload.Spec(*bench, cfg.Run.Seed)
		if err != nil {
			log.Fatal(err)
		}
		threads = append(threads, sim.Thread{Name: *bench, Prog: prog})
	}
	if *variant > 0 {
		prog, err := workload.VariantForScale(*variant, cfg.Thermal.Scale)
		if err != nil {
			log.Fatal(err)
		}
		threads = append(threads, sim.Thread{Name: fmt.Sprintf("variant%d", *variant), Prog: prog})
	}
	if len(threads) == 0 {
		log.Fatal("nothing to run: set -bench and/or -variant")
	}

	rec := &trace.Recorder{Stride: *stride}
	s, err := sim.New(cfg, threads, sim.Options{
		Policy:        dtm.Kind(*policy),
		WarmupCycles:  *warmup,
		Recorder:      rec,
		CollectEvents: *eventsOut != "" || *perfettoOut != "",
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, len(threads))
	for i, th := range threads {
		names[i] = th.Name
	}
	if *eventsOut != "" {
		if err := writeFile(*eventsOut, func(w *os.File) error {
			return telemetry.WriteNDJSON(w, res.Events)
		}); err != nil {
			log.Fatal(err)
		}
	}
	if *perfettoOut != "" {
		if err := writeFile(*perfettoOut, func(w *os.File) error {
			return telemetry.WritePerfetto(w, telemetry.TraceOptions{
				FrequencyHz: cfg.Power.FrequencyHz,
				ThreadNames: names,
				Events:      res.Events,
				Samples:     rec.Samples,
			})
		}); err != nil {
			log.Fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteCSV(w, nil); err != nil {
		log.Fatal(err)
	}
	sum := rec.Summarize()
	fmt.Fprintf(os.Stderr, "samples=%d peak=%.2fK@%s stalled=%.1f%% meanPower=%.1fW events=%d\n",
		sum.Samples, sum.PeakTempK, sum.PeakUnit, 100*sum.StallFrac, sum.MeanPowerW, len(res.Events))
}

// writeFile creates path, hands it to fill, and reports the write on
// stderr.
func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
