// Command heatstroke-bench runs the repo's Go benchmarks and renders
// the results as a stable JSON artifact, so performance can be tracked
// in version control and compared mechanically.
//
// Usage:
//
//	heatstroke-bench -out BENCH_baseline.json          # record a baseline
//	heatstroke-bench -compare BENCH_baseline.json      # run and diff
//	heatstroke-bench -bench 'ProfilePair' -benchtime 4x
//
// Recording runs `go test -run '^$' -bench <pattern> -benchmem` on the
// benchmark-bearing packages and parses the standard output lines into
// {name, iterations, ns_per_op, bytes_per_op, allocs_per_op} records
// (the -N GOMAXPROCS suffix is stripped so names are stable across
// machines).
//
// Comparing re-runs the same benchmarks and reports each one's ns/op,
// B/op, and allocs/op against the baseline file. Time regressions
// beyond -threshold (default 10%) and memory regressions beyond
// -alloc-threshold (default 5% on both B/op and allocs/op — the
// allocator columns are near-deterministic, so the bar is tighter)
// print a WARNING but do not fail the run — shared CI machines are too
// noisy for a hard time gate; the warnings make a genuine regression
// visible in the job log without blocking merges on scheduler jitter.
// -fail-on-regress (alias -strict) upgrades warnings to a non-zero
// exit for local use on a quiet machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the artifact schema. Previous, when present, holds earlier
// recordings of the same baseline (newest first) so the committed file
// carries the performance trajectory, not just the latest point; the
// tool reads and compares against the top-level rows only.
type File struct {
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Previous   []File      `json:"previous,omitempty"`
}

// defaultPattern covers the simulator-speed benchmarks the committed
// baseline tracks: the profile pair/solo runs that dominate experiment
// wall time, the raw pipeline rate, one full quantum, one sensor
// interval's worth of thermal Euler substeps (the per-interval
// constant every simulation pays), the warmup-snapshot-reuse
// comparison (reuse vs cold sub-benchmarks), the fork-tree sweep
// comparison (fork vs cold sub-benchmarks), and the fleet-throughput
// comparison (1 vs 4 workers behind the coordinator; the absolute
// jobs/sec is machine-bound, but a regression in either arm still
// surfaces as ns/op growth), and the thermal-solver comparison (the
// 27-node lumped network vs the 64x64 grid stencil over one sensor
// interval, pinning the cost ratio the lumped fast path exists for).
const defaultPattern = "^(BenchmarkProfileSolo|BenchmarkProfilePair|BenchmarkPipelineCycles|BenchmarkQuantumSimulation|BenchmarkThermalStep|BenchmarkGridThermalStep|BenchmarkWarmupReuse|BenchmarkForkSweep|BenchmarkFleetThroughput)$"

// defaultPackages are the packages holding those benchmarks.
var defaultPackages = []string{".", "./internal/experiment", "./internal/fleet", "./internal/thermal"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke-bench: ")
	pattern := flag.String("bench", defaultPattern, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value (e.g. 4x, 2s)")
	count := flag.Int("count", 1, "go test -count value")
	pkgs := flag.String("packages", strings.Join(defaultPackages, ","), "comma-separated packages to benchmark")
	out := flag.String("out", "", "write the JSON artifact to this file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to diff the run against")
	threshold := flag.Float64("threshold", 10, "regression warning threshold in percent ns/op")
	allocThreshold := flag.Float64("alloc-threshold", 5, "regression warning threshold in percent B/op and allocs/op")
	failOnRegress := flag.Bool("fail-on-regress", false, "exit non-zero when a regression exceeds a threshold")
	strict := flag.Bool("strict", false, "alias for -fail-on-regress")
	flag.Parse()

	results, err := runBenchmarks(*pattern, *benchtime, *count, strings.Split(*pkgs, ","))
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatalf("no benchmarks matched %q", *pattern)
	}
	artifact := File{Benchtime: *benchtime, Benchmarks: results}

	if *compare != "" {
		base, err := readBaseline(*compare)
		if err != nil {
			log.Fatal(err)
		}
		if regressed := diff(base, artifact, *threshold, *allocThreshold); regressed && (*failOnRegress || *strict) {
			os.Exit(1)
		}
		return
	}

	enc, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(results))
}

// benchLine matches `BenchmarkName-8  4  874652470 ns/op  93389022 B/op  2728139 allocs/op`
// (the memory columns require -benchmem, which runBenchmarks passes).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// runBenchmarks shells out to go test and parses the result lines.
// Packages run one at a time so a result can be attributed to its
// package even though the text format does not repeat it per line.
func runBenchmarks(pattern, benchtime string, count int, pkgs []string) ([]Benchmark, error) {
	var all []Benchmark
	for _, pkg := range pkgs {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", pattern, "-benchmem",
			"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test -bench %s: %w", pkg, err)
		}
		for _, line := range strings.Split(string(outBytes), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			b := Benchmark{Name: m[1], Package: pkg}
			b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			}
			if m[5] != "" {
				b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			all = append(all, b)
		}
	}
	return all, nil
}

func readBaseline(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// diff prints a per-benchmark comparison — time and memory columns —
// and returns whether any benchmark regressed past its threshold.
// ns/op is judged against timePct, B/op and allocs/op against
// memPct: the allocator columns barely jitter, so they get the
// tighter bar and catch a reintroduced hot-path allocation even on a
// noisy machine.
func diff(base, cur File, timePct, memPct float64) bool {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	regressed := false
	warn := func(name, col string, deltaPct, limit float64) {
		fmt.Printf("WARNING: %s %s regressed %.1f%% over baseline (threshold %.0f%%)\n",
			name, col, deltaPct, limit)
		regressed = true
	}
	pctOf := func(cur, old int64) float64 {
		if old <= 0 {
			return 0
		}
		return float64(cur-old) / float64(old) * 100
	}
	for _, b := range cur.Benchmarks {
		o, ok := baseBy[b.Name]
		if !ok || o.NsPerOp <= 0 {
			fmt.Printf("%-32s %14.0f ns/op  %12d B/op  %9d allocs/op  (no baseline)\n",
				b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
			continue
		}
		nsPct := (b.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		bytesPct := pctOf(b.BytesPerOp, o.BytesPerOp)
		allocsPct := pctOf(b.AllocsPerOp, o.AllocsPerOp)
		fmt.Printf("%-32s %14.0f ns/op  %+6.1f%%  %12d B/op  %+6.1f%%  %9d allocs/op  %+6.1f%%\n",
			b.Name, b.NsPerOp, nsPct, b.BytesPerOp, bytesPct, b.AllocsPerOp, allocsPct)
		if nsPct > timePct {
			warn(b.Name, "ns/op", nsPct, timePct)
		}
		if bytesPct > memPct {
			warn(b.Name, "B/op", bytesPct, memPct)
		}
		if allocsPct > memPct {
			warn(b.Name, "allocs/op", allocsPct, memPct)
		}
	}
	return regressed
}
