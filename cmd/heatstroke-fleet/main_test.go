package main

import (
	"context"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/server"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

// TestRunCoordinatesAndDrains exercises the coordinator lifecycle
// in-process: two real workers, one proxied job to completion, then
// SIGTERM must drain run to a nil return.
func TestRunCoordinatesAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	tiny := func() config.Config {
		cfg := config.Default()
		cfg.Run.QuantumCycles = 60_000
		return cfg
	}
	var workers []string
	for i := 0; i < 2; i++ {
		srv, err := server.New(server.Options{
			MaxConcurrent: 1, Parallelism: 1, Version: "fleet-cmd-test", BaseConfig: tiny,
		})
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		workers = append(workers, ts.URL)
	}

	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-worker", workers[0],
			"-worker", workers[1],
			"-hedge-after", "0",
			"-poll-interval", "100ms",
			"-quantum", "60000",
			"-drain-timeout", "1m",
		}, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not start listening")
	}

	c := client.New("http://" + addr)
	c.PollInterval = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	seed := int64(7)
	st, err := c.Submit(ctx, api.JobRequest{
		Experiment: "fig3",
		Benchmarks: []string{"crafty"},
		Quantum:    60_000,
		Warmup:     1_000,
		Seed:       &seed,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, nil)
	if err != nil || final.Status != api.StatusDone {
		t.Fatalf("wait: %v %+v", err, final)
	}
	if _, err := c.Artifact(ctx, st.ID, "csv"); err != nil {
		t.Fatalf("artifact: %v", err)
	}
	fst, err := c.Stats(ctx)
	if err != nil || fst.Submitted != 1 {
		t.Fatalf("stats: %v %+v", err, fst)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("run did not return after SIGTERM")
	}
}
