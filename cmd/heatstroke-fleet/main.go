// Command heatstroke-fleet is the fleet coordinator: one HTTP front
// end over N heatstroked workers. Jobs are consistent-hashed onto
// workers by their content address, warmup snapshots are shipped to
// whichever worker a key lands on, failed dispatches retry on the
// next replica, and stragglers are hedged onto a second replica (the
// first byte-identical result wins and the loser is cancelled).
//
// Usage:
//
//	heatstroke-fleet -worker http://h1:8080 -worker http://h2:8080
//	heatstroke-fleet -addr :7070 -hedge-after 15s -fleet-token secret
//
// The coordinator serves the same job API as a single daemon (so
// heatstroke -server and pkg/client work against it unchanged) plus
// worker membership and fleet-wide metrics:
//
//	POST   /v1/jobs               submit; sharded, retried, hedged
//	GET    /v1/jobs/{id}          status (survives worker death)
//	GET    /v1/jobs/{id}/artifact rendered table from the winning replica
//	GET    /v1/jobs/{id}/events   SSE progress proxied across retries
//	GET    /v1/traces/{id}        distributed trace stitched across workers
//	GET    /v1/workers            membership + per-worker health/stats
//	POST   /v1/workers            join {"url": "http://worker:8080"}
//	DELETE /v1/workers?url=...    leave
//	GET    /v1/stats              FleetStats (fleet counters + workers)
//	GET    /metrics               merged exposition, worker="..." labels
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/fleet"
)

// stringList collects repeated -worker flags.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke-fleet: ")
	if err := run(os.Args[1:], nil); err != nil {
		log.Fatal(err)
	}
}

// run is the coordinator lifecycle, factored out of main so tests can
// drive it in-process. ready, when non-nil, receives the bound
// address once the listener is up.
func run(args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("heatstroke-fleet", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	var workers stringList
	fs.Var(&workers, "worker", "worker base URL (repeatable); more can join at runtime via POST /v1/workers")
	hedgeAfter := fs.Duration("hedge-after", 30*time.Second, "duplicate a still-running job onto a second replica after this long (0 = never hedge)")
	pollInterval := fs.Duration("poll-interval", 2*time.Second, "worker health/stats poll cadence")
	fleetToken := fs.String("fleet-token", "", "bearer token sent to workers (must match their -fleet-token)")
	snapshotDir := fs.String("snapshot-dir", "", "local directory of {key}.snap warmup snapshots to ship from when no worker holds a key")
	noWarmShip := fs.Bool("no-warm-ship", false, "disable pre-dispatch warmup-snapshot shipping")
	scale := fs.Float64("scale", 0, "base thermal scale factor (default: config's; must match the workers')")
	quantum := fs.Int64("quantum", 0, "base cycles per OS quantum (default: config's; must match the workers')")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "shutdown drain deadline")
	logJSON := fs.Bool("log-json", false, "emit structured JSON logs instead of text")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	traceBuf := fs.Int("trace-buf", 0, "span capacity of the trace flight-recorder ring buffer (0 = default 8192, negative = disable tracing)")
	traceDir := fs.String("trace-dir", "", "flight-recorder mode: write each terminal job's stitched trace to this directory as {trace-id}.ndjson")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	handlerOpts := &slog.HandlerOptions{Level: level}
	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, handlerOpts))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, handlerOpts))
	}

	baseConfig := func() config.Config {
		cfg := config.Default()
		if *scale > 0 {
			cfg.Thermal.Scale = *scale
		}
		if *quantum > 0 {
			cfg.Run.QuantumCycles = *quantum
		}
		return cfg
	}
	hedge := *hedgeAfter
	if hedge == 0 {
		hedge = -1 // flag semantics: 0 disables; Options semantics: negative disables
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("-trace-dir: %w", err)
		}
	}
	coord, err := fleet.New(fleet.Options{
		Workers:             workers,
		HedgeAfter:          hedge,
		PollInterval:        *pollInterval,
		FleetToken:          *fleetToken,
		SnapshotDir:         *snapshotDir,
		DisableWarmShipping: *noWarmShip,
		BaseConfig:          baseConfig,
		Logger:              logger,
		TraceCapacity:       max(*traceBuf, 0),
		DisableTracing:      *traceBuf < 0,
		TraceDir:            *traceDir,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	log.Printf("coordinating %d workers, listening on %s", len(workers), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	log.Printf("signal received, draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := coord.Shutdown(drainCtx); err != nil {
		return err
	}
	log.Printf("drained cleanly")
	return nil
}
