package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/server"
)

// TestRunAgainstDaemon replays a tiny workload against an in-process
// daemon and requires a clean zero-failure report.
func TestRunAgainstDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sweeps")
	}
	tiny := func() config.Config {
		cfg := config.Default()
		cfg.Run.QuantumCycles = 60_000
		return cfg
	}
	srv, err := server.New(server.Options{
		MaxConcurrent: 2, Parallelism: 1, BaseConfig: tiny,
	})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	if err := run([]string{
		"-target", ts.URL,
		"-jobs", "4",
		"-keys", "2",
		"-zipf-s", "1.5",
		"-concurrency", "2",
		"-quantum", "60000",
		"-warmup", "1000",
		"-json",
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
