// Command heatstroke-loadgen replays a synthetic, Zipf-distributed
// stream of job submissions against a heatstroked daemon or a
// heatstroke-fleet coordinator and reports what the serving tier
// sustained: jobs/sec, latency percentiles, and cache/warm hit rates.
//
// The request population is deterministic in -seed-base: index k maps
// to seed base+k, so equal draws are identical jobs (exercising the
// content-addressed cache) and advancing -seed-base between runs makes
// the whole workload cache-cold.
//
// Usage:
//
//	heatstroke-loadgen -target http://localhost:7070 -jobs 100 -rate 5
//	heatstroke-loadgen -target http://localhost:8080 -jobs 50 -keys 10 -zipf-s 1.3
//	heatstroke-loadgen -jobs 20 -zipf-s -1 -keys 20     # cache-cold scan
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/heatstroke-sim/heatstroke/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heatstroke-loadgen: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("heatstroke-loadgen", flag.ExitOnError)
	target := fs.String("target", "http://localhost:8080", "daemon or coordinator base URL")
	jobs := fs.Int("jobs", 20, "total submissions")
	rate := fs.Float64("rate", 0, "submissions per second (0 = closed loop: submit as slots free)")
	concurrency := fs.Int("concurrency", 8, "maximum in-flight jobs")
	keys := fs.Int("keys", 10, "distinct-request population size")
	zipfS := fs.Float64("zipf-s", 1.2, "Zipf skew s > 1 (negative = sequential distinct-key scan)")
	zipfV := fs.Float64("zipf-v", 1, "Zipf v parameter")
	seed := fs.Int64("seed", 1, "draw-sequence seed")
	seedBase := fs.Int64("seed-base", 0, "request seed offset; advance between runs for a cache-cold workload")
	experiment := fs.String("experiment", "fig3", "experiment to submit")
	benchmarks := fs.String("benchmarks", "crafty", "comma-separated benchmark list")
	quantum := fs.Int64("quantum", 0, "request quantum cycles (0 = target default)")
	warmup := fs.Int64("warmup", 0, "request warmup cycles (0 = target default)")
	scale := fs.Float64("scale", 0, "request thermal scale (0 = target default)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var bms []string
	for _, b := range strings.Split(*benchmarks, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bms = append(bms, b)
		}
	}
	log.Printf("replaying %d jobs against %s (keys=%d zipf-s=%v rate=%v concurrency=%d)",
		*jobs, *target, *keys, *zipfS, *rate, *concurrency)
	rep, err := fleet.RunLoad(ctx, fleet.LoadOptions{
		URL:         *target,
		Jobs:        *jobs,
		Rate:        *rate,
		Concurrency: *concurrency,
		Keys:        *keys,
		ZipfS:       *zipfS,
		ZipfV:       *zipfV,
		Seed:        *seed,
		SeedBase:    *seedBase,
		Experiment:  *experiment,
		Benchmarks:  bms,
		Quantum:     *quantum,
		Warmup:      *warmup,
		Scale:       *scale,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Println(rep.String())
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", rep.Failed, rep.Submitted)
	}
	return nil
}
